(* Tests for the event-driven simulator: hand-computed schedules,
   conservation laws, error paths, and exactness properties. *)

open Rr_engine

let rr = Rr_policies.Round_robin.policy
let srpt = Rr_policies.Srpt.policy

let job ~id ~arrival ~size = Job.make ~id ~arrival ~size

let check_close ?(tol = 1e-9) msg a b = Alcotest.(check (float tol)) msg a b

(* ------------------------------------------------------------------ *)
(* Job validation                                                      *)
(* ------------------------------------------------------------------ *)

let test_job_validation () =
  List.iter
    (fun (id, arrival, size) ->
      match Job.make ~id ~arrival ~size with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "expected rejection of (%d, %g, %g)" id arrival size)
    [ (-1, 0., 1.); (0, -1., 1.); (0, 0., 0.); (0, 0., -2.); (0, Float.nan, 1.); (0, 0., Float.nan) ]

let test_job_release_order () =
  let a = job ~id:1 ~arrival:0. ~size:1. and b = job ~id:0 ~arrival:0. ~size:1. in
  Alcotest.(check bool) "id breaks ties" true (Job.compare_release b a < 0);
  let c = job ~id:5 ~arrival:1. ~size:1. in
  Alcotest.(check bool) "arrival first" true (Job.compare_release a c < 0)

(* ------------------------------------------------------------------ *)
(* Hand-computed schedules                                             *)
(* ------------------------------------------------------------------ *)

let test_single_job () =
  let res = Simulator.run ~machines:1 ~policy:rr [ job ~id:0 ~arrival:2. ~size:3. ] in
  check_close "completion" 5. res.completions.(0);
  check_close "flow" 3. (Simulator.flows res).(0)

let test_single_job_speed () =
  let res = Simulator.run ~speed:2. ~machines:1 ~policy:rr [ job ~id:0 ~arrival:0. ~size:3. ] in
  check_close "completion at double speed" 1.5 res.completions.(0)

(* Two unit jobs released together on one machine under RR: both run at
   rate 1/2 and complete together at t = 2. *)
let test_rr_two_jobs_share () =
  let res =
    Simulator.run ~machines:1 ~policy:rr
      [ job ~id:0 ~arrival:0. ~size:1.; job ~id:1 ~arrival:0. ~size:1. ]
  in
  check_close "job 0" 2. res.completions.(0);
  check_close "job 1" 2. res.completions.(1)

(* RR with sizes 1 and 2: both share until the small job finishes at t = 2;
   the big one then runs alone, finishing at 2 + 1 = 3. *)
let test_rr_unequal_sizes () =
  let res =
    Simulator.run ~machines:1 ~policy:rr
      [ job ~id:0 ~arrival:0. ~size:1.; job ~id:1 ~arrival:0. ~size:2. ]
  in
  check_close "small" 2. res.completions.(0);
  check_close "large" 3. res.completions.(1)

(* Staggered arrival: job 1 (size 2) alone on [0,1), then shares with job 2
   (size 1): at t=1 remaining are 1 and 1, each at rate 1/2 -> both done at
   t = 3. *)
let test_rr_staggered () =
  let res =
    Simulator.run ~machines:1 ~policy:rr
      [ job ~id:0 ~arrival:0. ~size:2.; job ~id:1 ~arrival:1. ~size:1. ]
  in
  check_close "first" 3. res.completions.(0);
  check_close "second" 3. res.completions.(1)

(* SRPT runs the small job to completion first. *)
let test_srpt_order () =
  let res =
    Simulator.run ~machines:1 ~policy:srpt
      [ job ~id:0 ~arrival:0. ~size:3.; job ~id:1 ~arrival:0. ~size:1. ]
  in
  check_close "small first" 1. res.completions.(1);
  check_close "large second" 4. res.completions.(0)

(* SRPT preempts: big job starts, small arrival takes over. *)
let test_srpt_preempts () =
  let res =
    Simulator.run ~machines:1 ~policy:srpt
      [ job ~id:0 ~arrival:0. ~size:5.; job ~id:1 ~arrival:1. ~size:1. ]
  in
  check_close "small served immediately" 2. res.completions.(1);
  check_close "big resumes" 6. res.completions.(0)

(* With as many machines as jobs, RR gives everyone a full machine. *)
let test_rr_underloaded_machines () =
  let res =
    Simulator.run ~machines:3 ~policy:rr
      [
        job ~id:0 ~arrival:0. ~size:1.;
        job ~id:1 ~arrival:0. ~size:2.;
        job ~id:2 ~arrival:0. ~size:3.;
      ]
  in
  check_close "j0" 1. res.completions.(0);
  check_close "j1" 2. res.completions.(1);
  check_close "j2" 3. res.completions.(2)

(* Four unit jobs on two machines under RR: each gets rate 1/2, all finish
   at 2; after two finish... all four identical so all at t=2. *)
let test_rr_multimachine_overload () =
  let jobs = List.init 4 (fun id -> job ~id ~arrival:0. ~size:1.) in
  let res = Simulator.run ~machines:2 ~policy:rr jobs in
  Array.iter (fun c -> check_close "all equal" 2. c) res.completions

(* A completion coinciding exactly with an arrival: job 0 finishes at t = 1
   just as job 1 arrives, so they never share. *)
let test_simultaneous_completion_and_arrival () =
  let res =
    Simulator.run ~machines:1 ~policy:rr
      [ job ~id:0 ~arrival:0. ~size:1.; job ~id:1 ~arrival:1. ~size:1. ]
  in
  check_close "first exactly at the boundary" 1. res.completions.(0);
  check_close "second never shares" 2. res.completions.(1)

(* Many jobs arriving at the same instant are all admitted before the
   policy runs. *)
let test_batch_admission () =
  let jobs = List.init 5 (fun id -> job ~id ~arrival:3. ~size:1.) in
  let res = Simulator.run ~record_trace:true ~machines:1 ~policy:rr jobs in
  Array.iter (fun c -> check_close "all share from t=3" 8. c) res.completions;
  match res.trace with
  | (s : Trace.segment) :: _ -> Alcotest.(check int) "first segment sees all" 5 (Trace.num_alive s)
  | [] -> Alcotest.fail "expected a trace"

(* Idle gap between jobs. *)
let test_idle_period () =
  let res =
    Simulator.run ~machines:1 ~policy:rr
      [ job ~id:0 ~arrival:0. ~size:1.; job ~id:1 ~arrival:10. ~size:1. ]
  in
  check_close "first" 1. res.completions.(0);
  check_close "second after idle" 11. res.completions.(1)

(* ------------------------------------------------------------------ *)
(* Error paths                                                         *)
(* ------------------------------------------------------------------ *)

let test_bad_ids_rejected () =
  List.iter
    (fun jobs ->
      match Simulator.run ~machines:1 ~policy:rr jobs with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected id validation failure")
    [
      [ job ~id:1 ~arrival:0. ~size:1. ];
      [ job ~id:0 ~arrival:0. ~size:1.; job ~id:0 ~arrival:1. ~size:1. ];
    ]

let test_machines_positive () =
  match Simulator.run ~machines:0 ~policy:rr [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected machines validation failure"

let test_speed_positive () =
  match Simulator.run ~speed:0. ~machines:1 ~policy:rr [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected speed validation failure"

let starving_policy =
  {
    Policy.name = "starver";
    clairvoyant = false;
    klass = None;
    allocate =
      (fun ~now:_ ~machines:_ ~speed:_ views ->
        { Policy.rates = Array.make (Array.length views) 0.; horizon = None });
  }

let test_starvation_detected () =
  match
    Simulator.run ~machines:1 ~policy:starving_policy [ job ~id:0 ~arrival:0. ~size:1. ]
  with
  | exception Simulator.Invalid_allocation _ -> ()
  | _ -> Alcotest.fail "expected starvation detection"

let overallocating_policy =
  {
    Policy.name = "greedy";
    clairvoyant = false;
    klass = None;
    allocate =
      (fun ~now:_ ~machines:_ ~speed:_ views ->
        { Policy.rates = Array.make (Array.length views) 1.; horizon = None });
  }

let test_overallocation_detected () =
  let jobs = List.init 3 (fun id -> job ~id ~arrival:0. ~size:1.) in
  match Simulator.run ~machines:1 ~policy:overallocating_policy jobs with
  | exception Simulator.Invalid_allocation _ -> ()
  | _ -> Alcotest.fail "expected over-allocation detection"

let bad_rate_policy rate =
  {
    Policy.name = "bad-rate";
    clairvoyant = false;
    klass = None;
    allocate =
      (fun ~now:_ ~machines:_ ~speed:_ views ->
        { Policy.rates = Array.make (Array.length views) rate; horizon = None });
  }

let test_bad_rates_detected () =
  List.iter
    (fun rate ->
      match
        Simulator.run ~machines:1 ~policy:(bad_rate_policy rate)
          [ job ~id:0 ~arrival:0. ~size:1. ]
      with
      | exception Simulator.Invalid_allocation _ -> ()
      | _ -> Alcotest.failf "expected rejection of rate %g" rate)
    [ -0.5; 1.5; Float.nan; Float.infinity ]

let stale_horizon_policy =
  {
    Policy.name = "stale-horizon";
    clairvoyant = false;
    klass = None;
    allocate =
      (fun ~now ~machines:_ ~speed:_ views ->
        { Policy.rates = Array.make (Array.length views) 1.; horizon = Some now });
  }

let test_stale_horizon_detected () =
  match
    Simulator.run ~machines:1 ~policy:stale_horizon_policy [ job ~id:0 ~arrival:0. ~size:1. ]
  with
  | exception Simulator.Invalid_allocation _ -> ()
  | _ -> Alcotest.fail "expected stale-horizon detection"

let test_max_events () =
  let jobs = List.init 10 (fun id -> job ~id ~arrival:(Float.of_int id) ~size:1.) in
  (match Simulator.run ~max_events:2 ~machines:1 ~policy:rr jobs with
  | exception Simulator.Event_limit_exceeded { limit = 2; now } ->
      Alcotest.(check bool) "progress recorded" true (now >= 0.)
  | _ -> Alcotest.fail "expected max_events to trip");
  (* the equal-share engine enforces the same budget *)
  match Simulator.run_equal_share ~max_events:2 ~machines:1 jobs with
  | exception Simulator.Event_limit_exceeded { limit = 2; _ } -> ()
  | _ -> Alcotest.fail "expected max_events to trip in run_equal_share"

(* ------------------------------------------------------------------ *)
(* Trace invariants                                                    *)
(* ------------------------------------------------------------------ *)

let test_trace_recorded_only_on_request () =
  let jobs = [ job ~id:0 ~arrival:0. ~size:1. ] in
  let without = Simulator.run ~machines:1 ~policy:rr jobs in
  Alcotest.(check int) "no trace" 0 (List.length without.trace);
  let with_trace = Simulator.run ~record_trace:true ~machines:1 ~policy:rr jobs in
  Alcotest.(check bool) "trace present" true (List.length with_trace.trace > 0)

let test_trace_work_conservation () =
  let jobs =
    [
      job ~id:0 ~arrival:0. ~size:2.;
      job ~id:1 ~arrival:0.5 ~size:1.;
      job ~id:2 ~arrival:3. ~size:0.75;
    ]
  in
  let res = Simulator.run ~record_trace:true ~speed:1.5 ~machines:1 ~policy:rr jobs in
  check_close ~tol:1e-6 "trace work equals total size" 3.75
    (Trace.total_work ~speed:1.5 res.trace)

let test_trace_segments_ordered () =
  let jobs = List.init 5 (fun id -> job ~id ~arrival:(Float.of_int id *. 0.3) ~size:1.) in
  let res = Simulator.run ~record_trace:true ~machines:1 ~policy:rr jobs in
  let rec check = function
    | (a : Trace.segment) :: (b : Trace.segment) :: rest ->
        Alcotest.(check bool) "ordered" true (a.t1 <= b.t0 +. 1e-12);
        Alcotest.(check bool) "positive duration" true (a.t1 > a.t0);
        check (b :: rest)
    | _ -> ()
  in
  check res.trace

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let instance_gen =
  QCheck2.Gen.(
    list_size (int_range 1 25)
      (pair (float_range 0. 20.) (float_range 0.1 5.)))

let jobs_of_pairs pairs =
  let sorted = List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) pairs in
  List.mapi (fun id (arrival, size) -> job ~id ~arrival ~size) sorted

let prop_flows_at_least_size_over_speed speed policy =
  QCheck2.Test.make
    ~name:(Printf.sprintf "flow >= size/speed (%s @ %g)" policy.Policy.name speed)
    ~count:100 instance_gen
    (fun pairs ->
      let jobs = jobs_of_pairs pairs in
      let res = Simulator.run ~speed ~machines:1 ~policy jobs in
      let flows = Simulator.flows res in
      Array.for_all Fun.id
        (Array.mapi
           (fun i f -> f >= (res.jobs.(i).Job.size /. speed) -. 1e-6)
           flows))

let prop_work_conservation =
  QCheck2.Test.make ~name:"trace work conservation (RR, m=2)" ~count:100 instance_gen
    (fun pairs ->
      let jobs = jobs_of_pairs pairs in
      let total = List.fold_left (fun acc (j : Job.t) -> acc +. j.size) 0. jobs in
      let res = Simulator.run ~record_trace:true ~machines:2 ~policy:rr jobs in
      Float.abs (Trace.total_work ~speed:1. res.trace -. total) <= 1e-6 *. (1. +. total))

let prop_all_complete =
  QCheck2.Test.make ~name:"every job completes after its arrival" ~count:100 instance_gen
    (fun pairs ->
      let jobs = jobs_of_pairs pairs in
      let res = Simulator.run ~machines:1 ~policy:srpt jobs in
      Array.for_all Fun.id
        (Array.mapi
           (fun i c -> Float.is_finite c && c > res.jobs.(i).Job.arrival)
           res.completions))

let prop_speed_helps_rr =
  QCheck2.Test.make ~name:"doubling RR's speed never increases total flow" ~count:100
    instance_gen
    (fun pairs ->
      let jobs = jobs_of_pairs pairs in
      let f1 = Simulator.total_flow (Simulator.run ~speed:1. ~machines:1 ~policy:rr jobs) in
      let f2 = Simulator.total_flow (Simulator.run ~speed:2. ~machines:1 ~policy:rr jobs) in
      f2 <= f1 +. 1e-6)

let prop_scale_invariance =
  (* Scheduling is scale-free: multiplying every arrival and size by c
     multiplies every completion time by c exactly.  A strong end-to-end
     check of the analytic clock advance. *)
  QCheck2.Test.make ~name:"flows scale linearly with the instance" ~count:100
    QCheck2.Gen.(pair (float_range 0.1 50.) instance_gen)
    (fun (c, pairs) ->
      let jobs = jobs_of_pairs pairs in
      let scaled =
        List.map
          (fun (j : Job.t) -> Job.make ~id:j.id ~arrival:(c *. j.arrival) ~size:(c *. j.size))
          jobs
      in
      let base = Simulator.flows (Simulator.run ~machines:2 ~policy:rr jobs) in
      let big = Simulator.flows (Simulator.run ~machines:2 ~policy:rr scaled) in
      Array.for_all Fun.id
        (Array.map2
           (fun f g -> Rr_util.Floatx.approx_equal ~rtol:1e-6 ~atol:1e-9 (c *. f) g)
           base big))

let prop_rr_rates_equal_in_trace =
  QCheck2.Test.make ~name:"RR allocates equal rates in every segment" ~count:100 instance_gen
    (fun pairs ->
      let jobs = jobs_of_pairs pairs in
      let res = Simulator.run ~record_trace:true ~machines:3 ~policy:rr jobs in
      List.for_all
        (fun (s : Trace.segment) ->
          let rates = Array.map (fun (e : Trace.entry) -> e.rate) s.alive in
          Array.for_all (fun r -> Float.abs (r -. rates.(0)) < 1e-12) rates)
        res.trace)

(* ------------------------------------------------------------------ *)
(* McNaughton machine assignment                                       *)
(* ------------------------------------------------------------------ *)

(* Two unit jobs sharing one machine at rate 1/2 over [0,2): the wrap-around
   rule serialises them inside each segment. *)
let test_assignment_serialises_shares () =
  let jobs = [ job ~id:0 ~arrival:0. ~size:1.; job ~id:1 ~arrival:0. ~size:1. ] in
  let res = Simulator.run ~record_trace:true ~machines:1 ~policy:rr jobs in
  let pieces = Assignment.of_trace ~machines:1 res.trace in
  (match Assignment.validate ~machines:1 pieces with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check_close ~tol:1e-9 "job 0 executes its size" 1. (Assignment.work_of_job ~job:0 pieces);
  check_close ~tol:1e-9 "job 1 executes its size" 1. (Assignment.work_of_job ~job:1 pieces)

let test_assignment_gantt_renders () =
  let jobs = [ job ~id:0 ~arrival:0. ~size:1.; job ~id:1 ~arrival:0. ~size:2. ] in
  let res = Simulator.run ~record_trace:true ~machines:2 ~policy:rr jobs in
  let pieces = Assignment.of_trace ~machines:2 res.trace in
  let g = Assignment.render_gantt ~width:40 ~machines:2 pieces in
  Alcotest.(check bool) "has machine rows" true
    (String.split_on_char '\n' g |> List.exists (fun l -> String.length l > 3 && String.sub l 0 2 = "m0"));
  Alcotest.(check string) "empty schedule" "(empty schedule)\n"
    (Assignment.render_gantt ~machines:1 [])

let test_assignment_validate_catches_overlap () =
  let bad =
    [
      { Assignment.job = 0; machine = 0; t0 = 0.; t1 = 1. };
      { Assignment.job = 1; machine = 0; t0 = 0.5; t1 = 1.5 };
    ]
  in
  (match Assignment.validate ~machines:1 bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected machine-overlap detection");
  let bad2 =
    [
      { Assignment.job = 0; machine = 0; t0 = 0.; t1 = 1. };
      { Assignment.job = 0; machine = 1; t0 = 0.5; t1 = 1.5 };
    ]
  in
  match Assignment.validate ~machines:2 bad2 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected job-self-overlap detection"

let prop_assignment_feasible =
  QCheck2.Test.make
    ~name:"McNaughton assignment of any RR trace is feasible and work-preserving" ~count:60
    QCheck2.Gen.(
      pair (int_range 1 3)
        (list_size (int_range 1 15) (pair (float_range 0. 10.) (float_range 0.2 3.))))
    (fun (machines, pairs) ->
      let jobs = jobs_of_pairs pairs in
      let res = Simulator.run ~record_trace:true ~speed:1.5 ~machines ~policy:rr jobs in
      let pieces = Assignment.of_trace ~machines res.trace in
      Assignment.validate ~machines pieces = Ok ()
      && List.for_all
           (fun (j : Job.t) ->
             Rr_util.Floatx.approx_equal ~rtol:1e-6 ~atol:1e-6
               (Assignment.work_of_job ~job:j.id pieces)
               (j.size /. 1.5))
           jobs)

(* ------------------------------------------------------------------ *)
(* Discrete reference simulator                                        *)
(* ------------------------------------------------------------------ *)

let test_discrete_single_job () =
  let c = Discrete.run ~dt:0.1 ~machines:1 ~policy:rr [ job ~id:0 ~arrival:0. ~size:1. ] in
  Alcotest.(check (float 0.1001)) "within one step" 1. c.(0)

let test_discrete_validation () =
  List.iter
    (fun f ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected discrete validation failure")
    [
      (fun () -> ignore (Discrete.run ~dt:0. ~machines:1 ~policy:rr []));
      (fun () -> ignore (Discrete.run ~dt:0.1 ~machines:0 ~policy:rr []));
      (fun () -> ignore (Discrete.run ~dt:0.1 ~machines:1 ~policy:rr [ job ~id:3 ~arrival:0. ~size:1. ]));
    ]

(* For a priority policy like SRPT a dt-granularity decision can permute
   jobs whose remaining work is nearly tied, moving individual completion
   times arbitrarily; what is stable is the *sorted* completion profile.
   For continuous-share RR, per-job completions themselves are stable. *)
let prop_discrete_matches_exact ~sort policy =
  QCheck2.Test.make
    ~name:(Printf.sprintf "discrete reference agrees with exact simulator (%s)" policy.Policy.name)
    ~count:50
    QCheck2.Gen.(list_size (int_range 1 10) (pair (float_range 0. 8.) (float_range 0.2 3.)))
    (fun pairs ->
      let jobs = jobs_of_pairs pairs in
      let dt = 0.005 in
      let exact = (Simulator.run ~machines:1 ~policy jobs).completions in
      let disc = Discrete.run ~dt ~machines:1 ~policy jobs in
      if sort then begin
        Array.sort Float.compare exact;
        Array.sort Float.compare disc
      end;
      let n = Array.length exact in
      (* Each step can misplace a completion by dt, and a late completion
         keeps stealing shares from every other job for up to one step, so
         lateness can compound across completion chains: an O(n^2 dt)
         envelope still catches any algebra bug (those are O(1)). *)
      let tol = Float.of_int ((n * n) + 10) *. dt in
      Array.for_all Fun.id (Array.map2 (fun a b -> Float.abs (a -. b) <= tol) exact disc))

(* ------------------------------------------------------------------ *)
(* Timeline identity                                                   *)
(* ------------------------------------------------------------------ *)

let prop_alive_integral_is_total_flow =
  QCheck2.Test.make ~name:"integral of alive count = total flow time" ~count:100 instance_gen
    (fun pairs ->
      let jobs = jobs_of_pairs pairs in
      let res = Simulator.run ~record_trace:true ~machines:2 ~policy:rr jobs in
      let total = Simulator.total_flow res in
      Float.abs (Rr_metrics.Timeline.alive_integral res.trace -. total)
      <= 1e-6 *. (1. +. total))

let test_timeline_stats () =
  let jobs = [ job ~id:0 ~arrival:0. ~size:1.; job ~id:1 ~arrival:0. ~size:1. ] in
  let res = Simulator.run ~record_trace:true ~machines:1 ~policy:rr jobs in
  Alcotest.(check int) "peak" 2 (Rr_metrics.Timeline.peak_alive res.trace);
  Alcotest.(check (float 1e-9)) "mean alive" 2. (Rr_metrics.Timeline.mean_alive res.trace);
  let series = Rr_metrics.Timeline.alive_series ~sample_every:0.5 res.trace in
  Alcotest.(check bool) "series sampled" true (List.length series >= 3)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_flows_at_least_size_over_speed 1. rr;
      prop_flows_at_least_size_over_speed 2. srpt;
      prop_work_conservation;
      prop_all_complete;
      prop_speed_helps_rr;
      prop_scale_invariance;
      prop_rr_rates_equal_in_trace;
      prop_discrete_matches_exact ~sort:false rr;
      prop_discrete_matches_exact ~sort:true srpt;
      prop_alive_integral_is_total_flow;
      prop_assignment_feasible;
    ]

let () =
  Alcotest.run "rr_engine"
    [
      ( "job",
        [
          Alcotest.test_case "validation" `Quick test_job_validation;
          Alcotest.test_case "release order" `Quick test_job_release_order;
        ] );
      ( "hand schedules",
        [
          Alcotest.test_case "single job" `Quick test_single_job;
          Alcotest.test_case "single job speed" `Quick test_single_job_speed;
          Alcotest.test_case "rr two jobs" `Quick test_rr_two_jobs_share;
          Alcotest.test_case "rr unequal" `Quick test_rr_unequal_sizes;
          Alcotest.test_case "rr staggered" `Quick test_rr_staggered;
          Alcotest.test_case "srpt order" `Quick test_srpt_order;
          Alcotest.test_case "srpt preempts" `Quick test_srpt_preempts;
          Alcotest.test_case "rr underloaded machines" `Quick test_rr_underloaded_machines;
          Alcotest.test_case "rr multimachine overload" `Quick test_rr_multimachine_overload;
          Alcotest.test_case "idle period" `Quick test_idle_period;
          Alcotest.test_case "boundary completion/arrival" `Quick
            test_simultaneous_completion_and_arrival;
          Alcotest.test_case "batch admission" `Quick test_batch_admission;
        ] );
      ( "errors",
        [
          Alcotest.test_case "bad ids" `Quick test_bad_ids_rejected;
          Alcotest.test_case "machines" `Quick test_machines_positive;
          Alcotest.test_case "speed" `Quick test_speed_positive;
          Alcotest.test_case "starvation" `Quick test_starvation_detected;
          Alcotest.test_case "overallocation" `Quick test_overallocation_detected;
          Alcotest.test_case "bad rates" `Quick test_bad_rates_detected;
          Alcotest.test_case "stale horizon" `Quick test_stale_horizon_detected;
          Alcotest.test_case "max events" `Quick test_max_events;
        ] );
      ( "trace",
        [
          Alcotest.test_case "opt-in" `Quick test_trace_recorded_only_on_request;
          Alcotest.test_case "work conservation" `Quick test_trace_work_conservation;
          Alcotest.test_case "segments ordered" `Quick test_trace_segments_ordered;
        ] );
      ( "discrete reference",
        [
          Alcotest.test_case "single job" `Quick test_discrete_single_job;
          Alcotest.test_case "validation" `Quick test_discrete_validation;
          Alcotest.test_case "timeline stats" `Quick test_timeline_stats;
        ] );
      ( "machine assignment",
        [
          Alcotest.test_case "serialises shares" `Quick test_assignment_serialises_shares;
          Alcotest.test_case "gantt renders" `Quick test_assignment_gantt_renders;
          Alcotest.test_case "overlap detection" `Quick test_assignment_validate_catches_overlap;
        ] );
      ("properties", qsuite);
    ]
