(* Tests for the process fan-out backend (Temporal_fairness.Procs) and
   the executor heuristic (Run.choose_backend / Run.batch_auto).  The
   load-bearing property mirrors the Pool's: forked children may run in
   any interleaving, but the results must be bit-identical to the
   sequential loop, in task-index order, with failures charged to the
   lowest failing index — even though the payloads and the failure
   messages cross a [Marshal] pipe. *)

open Temporal_fairness

let procs_counts = [ 1; 2; 3; 5 ]

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.equal (String.sub hay i n) needle || go (i + 1)) in
  n = 0 || go 0

let chunkings n =
  [ ("auto", `Auto); ("fixed 1", `Fixed 1); ("fixed 7", `Fixed 7); ("fixed n", `Fixed n) ]

(* ------------------------------------------------------------------ *)
(* Bit-identical to sequential                                         *)
(* ------------------------------------------------------------------ *)

let test_map_is_list_map () =
  let xs = List.init 100 (fun i -> i) in
  let f x = (x * 7) mod 13 in
  List.iter
    (fun procs ->
      List.iter
        (fun (name, chunk) ->
          Alcotest.(check (list int))
            (Printf.sprintf "procs %d, %s" procs name)
            (List.map f xs)
            (Procs.map ~chunk ~procs f xs))
        (chunkings (List.length xs)))
    procs_counts

let test_map_edge_sizes () =
  Alcotest.(check (list int)) "empty" [] (Procs.map ~procs:4 (fun x -> x) []);
  Alcotest.(check (list int)) "singleton" [ 42 ] (Procs.map ~procs:4 (fun x -> x + 1) [ 41 ]);
  Alcotest.(check (list int))
    "2 tasks on 4 procs" [ 1; 2 ]
    (Procs.map ~procs:4 (fun x -> x + 1) [ 0; 1 ])

let test_seeded_tasks_bit_identical () =
  (* Tasks seed their own PRNG from the task input (the discipline both
     parallel backends document), so the float streams must round-trip
     the Marshal pipe bit for bit. *)
  let f seed =
    let rng = Rr_util.Prng.create ~seed in
    List.init 20 (fun _ -> Int64.bits_of_float (Rr_util.Prng.exponential rng ~rate:1.3))
  in
  let xs = List.init 30 (fun i -> 9000 + i) in
  let seq = List.map f xs in
  List.iter
    (fun procs ->
      Alcotest.(check bool)
        (Printf.sprintf "procs %d" procs)
        true
        (List.equal ( = ) seq (Procs.map ~procs f xs)))
    procs_counts

let test_stateful_policy_bit_identical () =
  (* Quantum-RR closures own per-run mutable state; each child builds its
     own policy value inside the fork, and the measured aggregates must
     equal the sequential run's bit for bit. *)
  let insts =
    List.init 24 (fun i ->
        let rng = Rr_util.Prng.create ~seed:(7100 + i) in
        Rr_workload.Instance.generate_load ~rng
          ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
          ~load:0.85 ~machines:1 ~n:(30 + (i mod 5 * 10)) ())
  in
  let cfg = Run.config ~speed:2. ~cache:false () in
  let f inst =
    let r = Run.measure cfg (Rr_policies.Quantum_rr.policy ~quantum:0.7 ()) inst in
    (Int64.bits_of_float r.Run.norm, Int64.bits_of_float r.Run.power_sum, r.Run.events)
  in
  let seq = List.map f insts in
  List.iter
    (fun procs ->
      Alcotest.(check bool)
        (Printf.sprintf "procs %d" procs)
        true
        (List.equal ( = ) seq (Procs.map ~procs f insts)))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Failure semantics across the pipe                                   *)
(* ------------------------------------------------------------------ *)

let test_task_error_index_through_marshal () =
  (* Only task 37 fails; every procs count and chunking must attribute
     the failure to index 37 and carry the original exception's text
     (identity cannot survive Marshal, the message must). *)
  let xs = List.init 60 (fun i -> i) in
  let f x = if x = 37 then failwith "boom at 37" else x * 2 in
  List.iter
    (fun procs ->
      List.iter
        (fun (name, chunk) ->
          let label = Printf.sprintf "procs %d, %s" procs name in
          match Procs.map ~chunk ~procs f xs with
          | _ -> Alcotest.failf "%s: expected Task_error" label
          | exception Pool.Task_error (i, e) ->
              Alcotest.(check int) (label ^ ": index") 37 i;
              let msg =
                match (e, procs) with
                | Procs.Remote_error m, _ -> m
                | Failure m, 1 -> m (* procs = 1 runs in-process: original exn *)
                | e, _ -> Alcotest.failf "%s: unexpected payload %s" label (Printexc.to_string e)
              in
              Alcotest.(check bool)
                (label ^ ": message survives")
                true
                (contains ~needle:"boom at 37" msg))
        (chunkings (List.length xs)))
    procs_counts

let test_lowest_failing_index_wins () =
  (* Two failures in different chunks: the earlier index must win no
     matter which child finishes first. *)
  let xs = List.init 40 (fun i -> i) in
  let f x = if x = 31 || x = 8 then failwith "double" else x in
  match Procs.map ~chunk:(`Fixed 4) ~procs:3 f xs with
  | _ -> Alcotest.fail "expected Task_error"
  | exception Pool.Task_error (i, _) -> Alcotest.(check int) "lowest index" 8 i

let test_child_death_surfaces () =
  (* A child that dies without delivering its payload (here: _exit before
     writing) must surface as Task_error on the chunk's first task with
     the wait status in the message — not hang, not Option.get. *)
  if Procs.available () then
    let xs = List.init 12 (fun i -> i) in
    let f x = if x = 7 then Unix._exit 9 else x in
    match Procs.map ~chunk:(`Fixed 1) ~procs:3 f xs with
    | _ -> Alcotest.fail "expected Task_error"
    | exception Pool.Task_error (i, Procs.Remote_error msg) ->
        Alcotest.(check int) "charged to the dead chunk's first task" 7 i;
        Alcotest.(check bool)
          "message names the death" true
          (contains ~needle:"died before delivering" msg)
    | exception e -> Alcotest.failf "unexpected exception %s" (Printexc.to_string e)

let test_procs_validation () =
  match Procs.map ~procs:0 (fun x -> x) [ 1 ] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Executor heuristic                                                  *)
(* ------------------------------------------------------------------ *)

let backend_t =
  Alcotest.testable
    (fun ppf b -> Format.pp_print_string ppf (Run.backend_name b))
    (fun (a : Run.backend) b -> a = b)

let test_choose_backend () =
  let choose ~cpus ~tasks ~total_cost_us =
    Run.choose_backend ~cpus ~tasks ~total_cost_us ()
  in
  (* one CPU, one task, or a trivially cheap batch: never spawn anything *)
  Alcotest.check backend_t "1 cpu" `Sequential
    (choose ~cpus:1 ~tasks:100 ~total_cost_us:1e9);
  Alcotest.check backend_t "1 task" `Sequential
    (choose ~cpus:8 ~tasks:1 ~total_cost_us:1e9);
  Alcotest.check backend_t "cheap batch" `Sequential
    (choose ~cpus:8 ~tasks:100 ~total_cost_us:5_000.);
  (* cheap-per-task parallel work: domains, clamped to min(cpus, tasks) *)
  Alcotest.check backend_t "domains" (`Domains 4)
    (choose ~cpus:4 ~tasks:100 ~total_cost_us:1e6);
  Alcotest.check backend_t "domains clamped by tasks" (`Domains 3)
    (choose ~cpus:8 ~tasks:3 ~total_cost_us:1e6);
  (* expensive tasks, at least one per CPU: processes (when fork exists) *)
  let expect_heavy = if Procs.available () then `Procs 4 else `Domains 4 in
  Alcotest.check backend_t "procs for heavy tasks" expect_heavy
    (choose ~cpus:4 ~tasks:8 ~total_cost_us:800_000.);
  (* expensive tasks but fewer than cpus: domains still (fork would idle) *)
  Alcotest.check backend_t "few heavy tasks stay on domains" (`Domains 2)
    (choose ~cpus:8 ~tasks:2 ~total_cost_us:400_000.)

let test_batch_auto_backends_agree () =
  (* Every forced backend must hand back the very same measurements. *)
  let insts =
    List.init 12 (fun i ->
        let rng = Rr_util.Prng.create ~seed:(8200 + i) in
        Rr_workload.Instance.generate_load ~rng
          ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
          ~load:0.9 ~machines:1 ~n:80 ())
  in
  let policies =
    [ Rr_policies.Round_robin.policy; Rr_policies.Srpt.policy; Rr_policies.Fcfs.policy ]
  in
  let tasks = List.concat_map (fun i -> List.map (fun p -> (p, i)) policies) insts in
  let cfg = Run.config ~speed:1. ~cache:false ~engine:`General () in
  let seq = List.map (fun (p, i) -> Run.measure cfg p i) tasks in
  let key (r : Run.result) =
    (Int64.bits_of_float r.Run.norm, Int64.bits_of_float r.Run.power_sum, r.Run.n, r.Run.events)
  in
  let check name executor =
    let backend, rs = Run.batch_auto ~executor cfg tasks in
    ignore (Run.backend_name backend : string);
    Alcotest.(check bool) name true (List.equal ( = ) (List.map key seq) (List.map key rs))
  in
  check "auto" `Auto;
  check "sequential" `Sequential;
  (* procs before domains: the runtime refuses fork once any worker
     domain was ever spawned in the process. *)
  check "procs 2" (`Procs 2);
  check "domains 2" (`Domains 2)

let test_batch_auto_reports_backend () =
  (* Forcing a backend must report that backend back. *)
  let rng = Rr_util.Prng.create ~seed:42 in
  let inst =
    Rr_workload.Instance.generate_load ~rng
      ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
      ~load:0.8 ~machines:1 ~n:40 ()
  in
  let tasks = [ (Rr_policies.Srpt.policy, inst); (Rr_policies.Fcfs.policy, inst) ] in
  let cfg = Run.config ~cache:false () in
  let b, _ = Run.batch_auto ~executor:`Sequential cfg tasks in
  Alcotest.check backend_t "sequential" `Sequential b;
  let b, _ = Run.batch_auto ~executor:(`Domains 2) cfg tasks in
  Alcotest.check backend_t "domains" (`Domains 2) b;
  (* Auto on a tiny batch picks the sequential loop on any machine. *)
  let b, _ = Run.batch_auto ~executor:`Auto cfg tasks in
  Alcotest.check backend_t "auto on tiny batch" `Sequential b

let test_fork_poisoned_degrades () =
  (* Earlier tests spawned pool domains, which bans fork for the rest of
     the process.  The backend must know it (available = false, the
     heuristic stops picking procs) and a forced procs map must still
     return sequential-identical results via the in-parent path. *)
  assert (Pool.domains_ever_spawned ());
  Alcotest.(check bool) "available flips off" false (Procs.available ());
  Alcotest.check backend_t "heuristic avoids procs" (`Domains 4)
    (Run.choose_backend ~cpus:4 ~tasks:8 ~total_cost_us:800_000. ());
  let xs = List.init 50 (fun i -> i) in
  let f x = (x * 11) mod 17 in
  Alcotest.(check (list int)) "forced procs still correct" (List.map f xs)
    (Procs.map ~procs:3 f xs)

let () =
  Alcotest.run "procs"
    [
      ( "map",
        [
          Alcotest.test_case "= List.map" `Quick test_map_is_list_map;
          Alcotest.test_case "edge sizes" `Quick test_map_edge_sizes;
          Alcotest.test_case "seeded tasks" `Quick test_seeded_tasks_bit_identical;
          Alcotest.test_case "stateful policy" `Quick test_stateful_policy_bit_identical;
        ] );
      ( "failures",
        [
          Alcotest.test_case "task error index" `Quick test_task_error_index_through_marshal;
          Alcotest.test_case "lowest index wins" `Quick test_lowest_failing_index_wins;
          Alcotest.test_case "child death" `Quick test_child_death_surfaces;
          Alcotest.test_case "procs validation" `Quick test_procs_validation;
        ] );
      ( "executor",
        [
          Alcotest.test_case "choose_backend" `Quick test_choose_backend;
          Alcotest.test_case "backends agree" `Quick test_batch_auto_backends_agree;
          Alcotest.test_case "reports backend" `Quick test_batch_auto_reports_backend;
          (* must stay last: asserts the post-domain-spawn world *)
          Alcotest.test_case "fork poisoned degrades" `Quick test_fork_poisoned_degrades;
        ] );
    ]
