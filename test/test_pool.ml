(* Tests for the work-stealing domain pool (Rr_core.Pool) and the batch
   executor built on it.  The load-bearing property is determinism: the
   parallel schedule may interleave arbitrarily, but the *results* must be
   bit-identical to a sequential run, in task-index order. *)

open Temporal_fairness

let squares = List.init 100 (fun i -> i)

(* ------------------------------------------------------------------ *)
(* Pool.map semantics                                                  *)
(* ------------------------------------------------------------------ *)

let test_map_one_domain_is_list_map () =
  Pool.with_pool ~domains:1 (fun pool ->
      let f x = (x * x) + 1 in
      Alcotest.(check (list int)) "1 domain = List.map" (List.map f squares)
        (Pool.map pool f squares))

let test_map_many_domains_is_list_map () =
  Pool.with_pool ~domains:4 (fun pool ->
      let f x = (x * 7) mod 13 in
      Alcotest.(check (list int)) "4 domains = List.map" (List.map f squares)
        (Pool.map pool f squares);
      (* repeated batches on the same pool stay correct *)
      for _ = 1 to 5 do
        Alcotest.(check (list int)) "repeat" (List.map f squares) (Pool.map pool f squares)
      done)

let test_map_edge_sizes () =
  Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.map pool (fun x -> x) []);
      Alcotest.(check (list int)) "singleton" [ 42 ] (Pool.map pool (fun x -> x + 1) [ 41 ]);
      (* fewer tasks than domains *)
      Alcotest.(check (list int)) "2 tasks on 4 domains" [ 1; 2 ]
        (Pool.map pool (fun x -> x + 1) [ 0; 1 ]))

let test_map_reduce () =
  Pool.with_pool ~domains:3 (fun pool ->
      let total =
        Pool.map_reduce pool ~map:(fun x -> x * x) ~reduce:( + ) ~init:0 squares
      in
      Alcotest.(check int) "sum of squares"
        (List.fold_left (fun acc x -> acc + (x * x)) 0 squares)
        total;
      (* the fold is sequential over task-index order, so non-commutative
         reductions are well defined *)
      let concat =
        Pool.map_reduce pool ~map:string_of_int
          ~reduce:(fun acc s -> acc ^ "," ^ s)
          ~init:"" [ 1; 2; 3; 4; 5 ]
      in
      Alcotest.(check string) "ordered fold" ",1,2,3,4,5" concat)

(* ------------------------------------------------------------------ *)
(* Exception propagation                                               *)
(* ------------------------------------------------------------------ *)

let test_worker_exception_carries_index () =
  Pool.with_pool ~domains:4 (fun pool ->
      (match
         Pool.map pool
           (fun i -> if i = 37 then failwith "boom" else i)
           (List.init 100 (fun i -> i))
       with
      | exception Pool.Task_error (37, Failure msg) when msg = "boom" -> ()
      | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
      | _ -> Alcotest.fail "expected Task_error");
      (* When several tasks fail, the reported index is some failing task —
         the lowest *recorded* one.  It need not be the globally lowest:
         the first recorded failure stops the batch, so a lower-index task
         on another domain's slice may never run at all. *)
      match
        Pool.map pool
          (fun i -> if i mod 10 = 3 then failwith "multi" else i)
          (List.init 100 (fun i -> i))
      with
      | exception Pool.Task_error (i, Failure msg) when msg = "multi" && i mod 10 = 3 -> ()
      | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
      | _ -> Alcotest.fail "expected Task_error")

let test_pool_survives_failure () =
  (* a failed batch must not poison the pool for subsequent batches *)
  Pool.with_pool ~domains:2 (fun pool ->
      (try ignore (Pool.map pool (fun _ -> failwith "x") [ 1; 2; 3 ]) with Pool.Task_error _ -> ());
      Alcotest.(check (list int)) "pool still works" [ 2; 4; 6 ]
        (Pool.map pool (fun x -> 2 * x) [ 1; 2; 3 ]))

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let test_shutdown_idempotent_and_rejects_use () =
  let pool = Pool.create ~domains:2 () in
  Alcotest.(check int) "size" 2 (Pool.size pool);
  Alcotest.(check (list int)) "works" [ 1 ] (Pool.map pool (fun x -> x) [ 1 ]);
  Pool.shutdown pool;
  Pool.shutdown pool;
  match Pool.map pool (fun x -> x) [ 1 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection after shutdown"

let test_create_validation () =
  match Pool.create ~domains:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of domains = 0"

let test_gc_telemetry () =
  (* Every batch records one GC delta per participant; an allocating
     batch must show minor allocation on at least the caller's domain,
     and the configured minor-heap size must read back. *)
  (match Pool.create ~domains:1 ~minor_heap_words:100 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of tiny minor heap");
  Pool.with_pool ~domains:3 ~minor_heap_words:(1 lsl 20) (fun pool ->
      Alcotest.(check int) "minor_heap_words reads back" (1 lsl 20)
        (Pool.minor_heap_words pool);
      Alcotest.(check int) "no batch yet: no deltas" 0
        (Array.length (Pool.last_batch_gc_deltas pool));
      let xs = List.init 64 (fun i -> i) in
      let expect = List.map (fun i -> List.init 200 (fun j -> i + j)) xs in
      Alcotest.(check bool) "allocating batch" true
        (List.equal ( = ) expect (Pool.map pool (fun i -> List.init 200 (fun j -> i + j)) xs));
      let deltas = Pool.last_batch_gc_deltas pool in
      Alcotest.(check int) "one delta per participant" 3 (Array.length deltas);
      Array.iteri
        (fun i (g : Pool.gc_delta) ->
          Alcotest.(check int) "participant index" i g.Pool.participant;
          Alcotest.(check bool) "non-negative counters" true
            (g.Pool.minor_words >= 0. && g.Pool.promoted_words >= 0.
            && g.Pool.minor_collections >= 0 && g.Pool.major_collections >= 0))
        deltas;
      Alcotest.(check bool) "somebody allocated" true
        (Array.exists (fun (g : Pool.gc_delta) -> g.Pool.minor_words > 0.) deltas))

(* ------------------------------------------------------------------ *)
(* Determinism of Run.batch                                            *)
(* ------------------------------------------------------------------ *)

let batch_tasks =
  (* 200 (policy, instance) tasks: rr/srpt/fcfs over seeded random
     workloads, mixing sizes so task costs are uneven. *)
  let policies =
    [| Rr_policies.Round_robin.policy; Rr_policies.Srpt.policy; Rr_policies.Fcfs.policy |]
  in
  List.init 200 (fun i ->
      let rng = Rr_util.Prng.create ~seed:(1000 + i) in
      let inst =
        Rr_workload.Instance.generate_load ~rng
          ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
          ~load:0.85 ~machines:1
          ~n:(20 + (i mod 7 * 10))
          ()
      in
      (policies.(i mod 3), inst))

let test_batch_parallel_equals_sequential () =
  (* cache:false so the parallel batch actually re-simulates instead of
     replaying the sequential run's cache entries — the property under
     test is determinism of the simulations themselves. *)
  let cfg = Run.config ~speed:2. ~cache:false () in
  let seq = List.map (fun (p, i) -> Run.measure cfg p i) batch_tasks in
  Pool.with_pool ~domains:4 (fun pool ->
      let par = Run.batch pool cfg batch_tasks in
      Alcotest.(check int) "same length" (List.length seq) (List.length par);
      List.iteri
        (fun i ((a : Run.result), (b : Run.result)) ->
          Alcotest.(check string) (Printf.sprintf "task %d policy" i) a.policy_name b.policy_name;
          Alcotest.(check bool)
            (Printf.sprintf "task %d aggregates bit-identical" i)
            true
            (a.n = b.n && a.mean_flow = b.mean_flow && a.max_flow = b.max_flow);
          Alcotest.(check bool)
            (Printf.sprintf "task %d norm bit-identical" i)
            true
            (Int64.equal (Int64.bits_of_float a.norm) (Int64.bits_of_float b.norm));
          Alcotest.(check bool)
            (Printf.sprintf "task %d power sum bit-identical" i)
            true
            (Int64.equal (Int64.bits_of_float a.power_sum) (Int64.bits_of_float b.power_sum));
          Alcotest.(check int) (Printf.sprintf "task %d events" i) a.events b.events)
        (List.combine seq par))

(* ------------------------------------------------------------------ *)
(* Chunking: every policy must leave results bit-identical              *)
(* ------------------------------------------------------------------ *)

let chunkings n : (string * Pool.chunking) list =
  [
    ("auto", `Auto);
    ("fixed 1", `Fixed 1);
    ("fixed 3", `Fixed 3);
    ("fixed 64", `Fixed 64);
    (Printf.sprintf "fixed %d > n" (n + 1), `Fixed (n + 1));
  ]

let test_chunking_map_bit_identical () =
  (* Pure integer tasks: chunk boundaries must be invisible in the output. *)
  let items = List.init 157 Fun.id in
  let f x = (x * 31) lxor (x lsl 3) in
  let seq = List.map f items in
  Pool.with_pool ~domains:4 (fun pool ->
      List.iter
        (fun (name, chunk) ->
          Alcotest.(check (list int)) name seq (Pool.map ~chunk pool f items))
        (chunkings (List.length items)))

let test_chunking_batch_bit_identical () =
  let cfg = Run.config ~speed:2. ~cache:false () in
  let seq = List.map (fun (p, i) -> Run.measure cfg p i) batch_tasks in
  let bits (r : Run.result) =
    ( r.policy_name,
      r.n,
      Int64.bits_of_float r.norm,
      Int64.bits_of_float r.power_sum,
      Int64.bits_of_float r.mean_flow,
      Int64.bits_of_float r.max_flow,
      r.events )
  in
  let seq_bits = List.map bits seq in
  Pool.with_pool ~domains:4 (fun pool ->
      List.iter
        (fun (name, chunk) ->
          let par = Run.batch ~chunk pool cfg batch_tasks in
          Alcotest.(check bool)
            (Printf.sprintf "%s bit-identical" name)
            true
            (List.equal ( = ) seq_bits (List.map bits par)))
        (chunkings (List.length batch_tasks)))

let test_chunking_stateful_policy () =
  (* Quantum-RR closures own per-run mutable state, so every task builds
     its own policy value; the property under test is that chunked
     parallel execution of stateful simulations still reproduces the
     sequential results bit for bit. *)
  let insts =
    List.init 40 (fun i ->
        let rng = Rr_util.Prng.create ~seed:(7000 + i) in
        Rr_workload.Instance.generate_load ~rng
          ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
          ~load:0.85 ~machines:1 ~n:(30 + (i mod 5 * 10)) ())
  in
  let cfg = Run.config ~speed:2. ~cache:false () in
  let f inst =
    let r = Run.measure cfg (Rr_policies.Quantum_rr.policy ~quantum:0.7 ()) inst in
    (Int64.bits_of_float r.Run.norm, Int64.bits_of_float r.Run.power_sum, r.Run.events)
  in
  let seq = List.map f insts in
  Pool.with_pool ~domains:4 (fun pool ->
      List.iter
        (fun (name, chunk) ->
          Alcotest.(check bool) name true (List.equal ( = ) seq (Pool.map ~chunk pool f insts)))
        (chunkings (List.length insts)))

let test_chunking_task_error_index () =
  (* Only task 37 fails, so the reported index must be 37 under every
     chunking — chunks must not coarsen the failure attribution. *)
  Pool.with_pool ~domains:4 (fun pool ->
      List.iter
        (fun (name, chunk) ->
          match
            Pool.map ~chunk pool
              (fun i -> if i = 37 then failwith "boom" else i)
              (List.init 100 Fun.id)
          with
          | exception Pool.Task_error (37, Failure msg) when msg = "boom" -> ()
          | exception e -> Alcotest.failf "%s: wrong exception %s" name (Printexc.to_string e)
          | _ -> Alcotest.failf "%s: expected Task_error" name)
        (chunkings 100))

let test_fixed_chunk_validation () =
  Pool.with_pool ~domains:2 (fun pool ->
      match Pool.map ~chunk:(`Fixed 0) pool Fun.id [ 1; 2 ] with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected rejection of `Fixed 0")

(* ------------------------------------------------------------------ *)
(* Parallel streaming                                                  *)
(* ------------------------------------------------------------------ *)

let stream_tasks =
  List.init 12 (fun i ->
      let stream =
        Rr_workload.Instance.Stream.generate_load ~seed:(3000 + i)
          ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
          ~load:0.9 ~machines:1
          ~n:(500 + (i mod 4 * 300))
          ()
      in
      let policy =
        match i mod 3 with
        | 0 -> Rr_policies.Round_robin.policy
        | 1 -> Rr_policies.Srpt.policy
        | _ -> Rr_policies.Fcfs.policy
      in
      (policy, stream))

let test_batch_stream_matches_sequential () =
  let cfg = Run.config ~speed:2. ~cache:false () in
  let seq = List.map (fun (p, s) -> Run.measure_stream cfg p s) stream_tasks in
  Pool.with_pool ~domains:4 (fun pool ->
      List.iter
        (fun (name, chunk) ->
          let par = Run.batch_stream ~chunk pool cfg stream_tasks in
          List.iteri
            (fun i ((a : Run.result), (b : Run.result)) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s task %d" name i)
                true
                (a.n = b.n
                && Int64.equal (Int64.bits_of_float a.norm) (Int64.bits_of_float b.norm)
                && Int64.equal (Int64.bits_of_float a.power_sum)
                     (Int64.bits_of_float b.power_sum)
                && a.max_flow = b.max_flow))
            (List.combine seq par))
        [ ("auto", `Auto); ("fixed 1", `Fixed 1) ])

let test_fold_stream_matches_sequential () =
  let cfg = Run.config ~speed:2. ~cache:false () in
  (* Reference: one sequential pass per stream through the same sink. *)
  let seq_value (p, s) =
    let sink = Rr_metrics.Sink.power_sum ~k:2 () in
    let (_ : Rr_engine.Simulator.summary) =
      Run.simulate_stream cfg p s ~sink:(Rr_metrics.Sink.feed sink)
    in
    Rr_metrics.Sink.value sink
  in
  let expected = List.fold_left (fun acc t -> acc +. seq_value t) 0. stream_tasks in
  Pool.with_pool ~domains:4 (fun pool ->
      let got =
        Run.fold_stream pool cfg
          ~sink:(fun () -> Rr_metrics.Sink.power_sum ~k:2 ())
          ~merge:Rr_metrics.Sink.Merge.power_sum ~init:0. stream_tasks
      in
      let rel = Float.abs (got -. expected) /. Float.max 1e-300 (Float.abs expected) in
      Alcotest.(check bool)
        (Printf.sprintf "parallel fold within 1e-9 (rel %.2e)" rel)
        true (rel <= 1e-9));
  (* Welford moments merge across domains: count/min/max exact, mean tight. *)
  let seq_moments =
    let acc = ref (Rr_util.Welford.create ()) in
    List.iter
      (fun (p, s) ->
        let sink = Rr_metrics.Sink.moments () in
        let (_ : Rr_engine.Simulator.summary) =
          Run.simulate_stream cfg p s ~sink:(Rr_metrics.Sink.feed sink)
        in
        acc := Rr_util.Welford.merge !acc (Rr_metrics.Sink.value sink))
      stream_tasks;
    !acc
  in
  Pool.with_pool ~domains:4 (fun pool ->
      let par =
        Run.fold_stream pool cfg
          ~sink:(fun () -> Rr_metrics.Sink.moments ())
          ~merge:Rr_util.Welford.merge
          ~init:(Rr_util.Welford.create ())
          stream_tasks
      in
      Alcotest.(check int) "count" (Rr_util.Welford.count seq_moments)
        (Rr_util.Welford.count par);
      Alcotest.(check (float 0.)) "max exact" (Rr_util.Welford.max seq_moments)
        (Rr_util.Welford.max par);
      let rel a b = Float.abs (a -. b) /. Float.max 1e-300 (Float.abs a) in
      Alcotest.(check bool) "mean within 1e-9" true
        (rel (Rr_util.Welford.mean seq_moments) (Rr_util.Welford.mean par) <= 1e-9))

let test_ratio_stream_pool_invariant () =
  let cfg = Run.config ~speed:3. ~cache:false () in
  let _, stream = List.hd stream_tasks in
  let without = Ratio.vs_baseline_stream cfg Rr_policies.Round_robin.policy stream in
  Pool.with_pool ~domains:4 (fun pool ->
      let with_pool = Ratio.vs_baseline_stream ~pool cfg Rr_policies.Round_robin.policy stream in
      Alcotest.(check bool) "pooled ratio bit-identical" true
        (Int64.equal (Int64.bits_of_float without) (Int64.bits_of_float with_pool)))

let test_batch_domain_count_invariance () =
  (* results must not depend on the number of domains *)
  let cfg = Run.config ~cache:false () in
  let tasks = List.filteri (fun i _ -> i < 30) batch_tasks in
  let on n = Pool.with_pool ~domains:n (fun pool -> Run.batch pool cfg tasks) in
  let r1 = on 1 and r2 = on 2 and r4 = on 4 in
  List.iter
    (fun (a, b) ->
      List.iter2
        (fun (x : Run.result) (y : Run.result) ->
          Alcotest.(check bool) "invariant" true
            (x.norm = y.norm && x.power_sum = y.power_sum && x.mean_flow = y.mean_flow
            && x.max_flow = y.max_flow))
        a b)
    [ (r1, r2); (r1, r4) ]

let () =
  Alcotest.run "rr_pool"
    [
      ( "map",
        [
          Alcotest.test_case "1 domain = List.map" `Quick test_map_one_domain_is_list_map;
          Alcotest.test_case "4 domains = List.map" `Quick test_map_many_domains_is_list_map;
          Alcotest.test_case "edge sizes" `Quick test_map_edge_sizes;
          Alcotest.test_case "map_reduce" `Quick test_map_reduce;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "task index" `Quick test_worker_exception_carries_index;
          Alcotest.test_case "pool survives" `Quick test_pool_survives_failure;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "shutdown" `Quick test_shutdown_idempotent_and_rejects_use;
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "gc telemetry" `Quick test_gc_telemetry;
        ] );
      ( "chunking",
        [
          Alcotest.test_case "map bit-identical" `Quick test_chunking_map_bit_identical;
          Alcotest.test_case "batch bit-identical" `Quick test_chunking_batch_bit_identical;
          Alcotest.test_case "stateful policy" `Quick test_chunking_stateful_policy;
          Alcotest.test_case "task error index" `Quick test_chunking_task_error_index;
          Alcotest.test_case "fixed 0 rejected" `Quick test_fixed_chunk_validation;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "batch_stream = sequential" `Quick
            test_batch_stream_matches_sequential;
          Alcotest.test_case "fold_stream = sequential" `Quick
            test_fold_stream_matches_sequential;
          Alcotest.test_case "ratio pool invariance" `Quick test_ratio_stream_pool_invariant;
        ] );
      ( "batch determinism",
        [
          Alcotest.test_case "4 domains = sequential" `Quick test_batch_parallel_equals_sequential;
          Alcotest.test_case "domain count invariance" `Quick test_batch_domain_count_invariance;
        ] );
    ]
