(* Tests for the work-stealing domain pool (Rr_core.Pool) and the batch
   executor built on it.  The load-bearing property is determinism: the
   parallel schedule may interleave arbitrarily, but the *results* must be
   bit-identical to a sequential run, in task-index order. *)

open Temporal_fairness

let squares = List.init 100 (fun i -> i)

(* ------------------------------------------------------------------ *)
(* Pool.map semantics                                                  *)
(* ------------------------------------------------------------------ *)

let test_map_one_domain_is_list_map () =
  Pool.with_pool ~domains:1 (fun pool ->
      let f x = (x * x) + 1 in
      Alcotest.(check (list int)) "1 domain = List.map" (List.map f squares)
        (Pool.map pool f squares))

let test_map_many_domains_is_list_map () =
  Pool.with_pool ~domains:4 (fun pool ->
      let f x = (x * 7) mod 13 in
      Alcotest.(check (list int)) "4 domains = List.map" (List.map f squares)
        (Pool.map pool f squares);
      (* repeated batches on the same pool stay correct *)
      for _ = 1 to 5 do
        Alcotest.(check (list int)) "repeat" (List.map f squares) (Pool.map pool f squares)
      done)

let test_map_edge_sizes () =
  Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.map pool (fun x -> x) []);
      Alcotest.(check (list int)) "singleton" [ 42 ] (Pool.map pool (fun x -> x + 1) [ 41 ]);
      (* fewer tasks than domains *)
      Alcotest.(check (list int)) "2 tasks on 4 domains" [ 1; 2 ]
        (Pool.map pool (fun x -> x + 1) [ 0; 1 ]))

let test_map_reduce () =
  Pool.with_pool ~domains:3 (fun pool ->
      let total =
        Pool.map_reduce pool ~map:(fun x -> x * x) ~reduce:( + ) ~init:0 squares
      in
      Alcotest.(check int) "sum of squares"
        (List.fold_left (fun acc x -> acc + (x * x)) 0 squares)
        total;
      (* the fold is sequential over task-index order, so non-commutative
         reductions are well defined *)
      let concat =
        Pool.map_reduce pool ~map:string_of_int
          ~reduce:(fun acc s -> acc ^ "," ^ s)
          ~init:"" [ 1; 2; 3; 4; 5 ]
      in
      Alcotest.(check string) "ordered fold" ",1,2,3,4,5" concat)

(* ------------------------------------------------------------------ *)
(* Exception propagation                                               *)
(* ------------------------------------------------------------------ *)

let test_worker_exception_carries_index () =
  Pool.with_pool ~domains:4 (fun pool ->
      (match
         Pool.map pool
           (fun i -> if i = 37 then failwith "boom" else i)
           (List.init 100 (fun i -> i))
       with
      | exception Pool.Task_error (37, Failure msg) when msg = "boom" -> ()
      | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
      | _ -> Alcotest.fail "expected Task_error");
      (* When several tasks fail, the reported index is some failing task —
         the lowest *recorded* one.  It need not be the globally lowest:
         the first recorded failure stops the batch, so a lower-index task
         on another domain's slice may never run at all. *)
      match
        Pool.map pool
          (fun i -> if i mod 10 = 3 then failwith "multi" else i)
          (List.init 100 (fun i -> i))
      with
      | exception Pool.Task_error (i, Failure msg) when msg = "multi" && i mod 10 = 3 -> ()
      | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
      | _ -> Alcotest.fail "expected Task_error")

let test_pool_survives_failure () =
  (* a failed batch must not poison the pool for subsequent batches *)
  Pool.with_pool ~domains:2 (fun pool ->
      (try ignore (Pool.map pool (fun _ -> failwith "x") [ 1; 2; 3 ]) with Pool.Task_error _ -> ());
      Alcotest.(check (list int)) "pool still works" [ 2; 4; 6 ]
        (Pool.map pool (fun x -> 2 * x) [ 1; 2; 3 ]))

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let test_shutdown_idempotent_and_rejects_use () =
  let pool = Pool.create ~domains:2 in
  Alcotest.(check int) "size" 2 (Pool.size pool);
  Alcotest.(check (list int)) "works" [ 1 ] (Pool.map pool (fun x -> x) [ 1 ]);
  Pool.shutdown pool;
  Pool.shutdown pool;
  match Pool.map pool (fun x -> x) [ 1 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection after shutdown"

let test_create_validation () =
  match Pool.create ~domains:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of domains = 0"

(* ------------------------------------------------------------------ *)
(* Determinism of Run.batch                                            *)
(* ------------------------------------------------------------------ *)

let batch_tasks =
  (* 200 (policy, instance) tasks: rr/srpt/fcfs over seeded random
     workloads, mixing sizes so task costs are uneven. *)
  let policies =
    [| Rr_policies.Round_robin.policy; Rr_policies.Srpt.policy; Rr_policies.Fcfs.policy |]
  in
  List.init 200 (fun i ->
      let rng = Rr_util.Prng.create ~seed:(1000 + i) in
      let inst =
        Rr_workload.Instance.generate_load ~rng
          ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
          ~load:0.85 ~machines:1
          ~n:(20 + (i mod 7 * 10))
          ()
      in
      (policies.(i mod 3), inst))

let test_batch_parallel_equals_sequential () =
  (* cache:false so the parallel batch actually re-simulates instead of
     replaying the sequential run's cache entries — the property under
     test is determinism of the simulations themselves. *)
  let cfg = Run.config ~speed:2. ~cache:false () in
  let seq = List.map (fun (p, i) -> Run.measure cfg p i) batch_tasks in
  Pool.with_pool ~domains:4 (fun pool ->
      let par = Run.batch pool cfg batch_tasks in
      Alcotest.(check int) "same length" (List.length seq) (List.length par);
      List.iteri
        (fun i ((a : Run.result), (b : Run.result)) ->
          Alcotest.(check string) (Printf.sprintf "task %d policy" i) a.policy_name b.policy_name;
          Alcotest.(check bool)
            (Printf.sprintf "task %d aggregates bit-identical" i)
            true
            (a.n = b.n && a.mean_flow = b.mean_flow && a.max_flow = b.max_flow);
          Alcotest.(check bool)
            (Printf.sprintf "task %d norm bit-identical" i)
            true
            (Int64.equal (Int64.bits_of_float a.norm) (Int64.bits_of_float b.norm));
          Alcotest.(check bool)
            (Printf.sprintf "task %d power sum bit-identical" i)
            true
            (Int64.equal (Int64.bits_of_float a.power_sum) (Int64.bits_of_float b.power_sum));
          Alcotest.(check int) (Printf.sprintf "task %d events" i) a.events b.events)
        (List.combine seq par))

let test_batch_domain_count_invariance () =
  (* results must not depend on the number of domains *)
  let cfg = Run.config ~cache:false () in
  let tasks = List.filteri (fun i _ -> i < 30) batch_tasks in
  let on n = Pool.with_pool ~domains:n (fun pool -> Run.batch pool cfg tasks) in
  let r1 = on 1 and r2 = on 2 and r4 = on 4 in
  List.iter
    (fun (a, b) ->
      List.iter2
        (fun (x : Run.result) (y : Run.result) ->
          Alcotest.(check bool) "invariant" true
            (x.norm = y.norm && x.power_sum = y.power_sum && x.mean_flow = y.mean_flow
            && x.max_flow = y.max_flow))
        a b)
    [ (r1, r2); (r1, r4) ]

let () =
  Alcotest.run "rr_pool"
    [
      ( "map",
        [
          Alcotest.test_case "1 domain = List.map" `Quick test_map_one_domain_is_list_map;
          Alcotest.test_case "4 domains = List.map" `Quick test_map_many_domains_is_list_map;
          Alcotest.test_case "edge sizes" `Quick test_map_edge_sizes;
          Alcotest.test_case "map_reduce" `Quick test_map_reduce;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "task index" `Quick test_worker_exception_carries_index;
          Alcotest.test_case "pool survives" `Quick test_pool_survives_failure;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "shutdown" `Quick test_shutdown_idempotent_and_rejects_use;
          Alcotest.test_case "create validation" `Quick test_create_validation;
        ] );
      ( "batch determinism",
        [
          Alcotest.test_case "4 domains = sequential" `Quick test_batch_parallel_equals_sequential;
          Alcotest.test_case "domain count invariance" `Quick test_batch_domain_count_invariance;
        ] );
    ]
