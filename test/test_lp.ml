(* Tests for the LP layer: simplex on known programs, brute-force optima,
   and the soundness sandwich of the paper's LP relaxation. *)

open Rr_lp

let check_close ?(tol = 1e-6) msg a b = Alcotest.(check (float tol)) msg a b

(* ------------------------------------------------------------------ *)
(* Simplex                                                             *)
(* ------------------------------------------------------------------ *)

let test_simplex_basic_le () =
  (* min -x - y s.t. x + y <= 4, x <= 2 -> x = 2, y = 2, obj = -4. *)
  let p =
    {
      Simplex.objective = [| -1.; -1. |];
      rows = [ ([| 1.; 1. |], Simplex.Le, 4.); ([| 1.; 0. |], Simplex.Le, 2.) ];
    }
  in
  match Simplex.solve p with
  | Simplex.Optimal { objective; x } ->
      check_close "objective" (-4.) objective;
      check_close "x" 2. x.(0);
      check_close "y" 2. x.(1)
  | _ -> Alcotest.fail "expected optimum"

let test_simplex_ge_eq () =
  (* min 2x + 3y s.t. x + y >= 4, x = 1 -> y = 3, obj = 11. *)
  let p =
    {
      Simplex.objective = [| 2.; 3. |];
      rows = [ ([| 1.; 1. |], Simplex.Ge, 4.); ([| 1.; 0. |], Simplex.Eq, 1.) ];
    }
  in
  match Simplex.solve p with
  | Simplex.Optimal { objective; x } ->
      check_close "objective" 11. objective;
      check_close "x" 1. x.(0);
      check_close "y" 3. x.(1)
  | _ -> Alcotest.fail "expected optimum"

let test_simplex_infeasible () =
  let p =
    {
      Simplex.objective = [| 1. |];
      rows = [ ([| 1. |], Simplex.Ge, 5.); ([| 1. |], Simplex.Le, 1.) ];
    }
  in
  match Simplex.solve p with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_simplex_unbounded () =
  (* min -x with only x >= 0: unbounded below. *)
  let p = { Simplex.objective = [| -1. |]; rows = [ ([| 1. |], Simplex.Ge, 0.) ] } in
  match Simplex.solve p with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_simplex_negative_rhs () =
  (* min x s.t. -x <= -3 (i.e. x >= 3). *)
  let p = { Simplex.objective = [| 1. |]; rows = [ ([| -1. |], Simplex.Le, -3.) ] } in
  match Simplex.solve p with
  | Simplex.Optimal { objective; _ } -> check_close "x = 3" 3. objective
  | _ -> Alcotest.fail "expected optimum"

let test_simplex_validation () =
  (match Simplex.solve { Simplex.objective = [||]; rows = [] } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty objective");
  match
    Simplex.solve { Simplex.objective = [| 1. |]; rows = [ ([| 1.; 2. |], Simplex.Le, 1.) ] }
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "ragged row"

(* ------------------------------------------------------------------ *)
(* Brute force                                                         *)
(* ------------------------------------------------------------------ *)

let test_brute_single_job () =
  check_close "one job flow = size" 3. (Brute.optimal_power_sum ~k:1 ~machines:1 [ (0, 3) ]);
  check_close "squared" 9. (Brute.optimal_power_sum ~k:2 ~machines:1 [ (0, 3) ])

let test_brute_two_jobs_srpt_order () =
  (* Sizes 1 and 3 at t = 0 on one machine: optimal l1 = 1 + 4 = 5. *)
  check_close "l1" 5. (Brute.optimal_power_sum ~k:1 ~machines:1 [ (0, 1); (0, 3) ]);
  (* l2 power: 1 + 16 = 17. *)
  check_close "l2 power" 17. (Brute.optimal_power_sum ~k:2 ~machines:1 [ (0, 1); (0, 3) ])

let test_brute_uses_both_machines () =
  (* Two unit jobs, two machines: both finish at time 1. *)
  check_close "parallel" 2. (Brute.optimal_power_sum ~k:1 ~machines:2 [ (0, 1); (0, 1) ])

let test_brute_respects_release () =
  (* A job cannot start before its arrival. *)
  check_close "release" 1. (Brute.optimal_power_sum ~k:1 ~machines:1 [ (5, 1) ])

let test_brute_validation () =
  List.iter
    (fun f ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected brute validation failure")
    [
      (fun () -> Brute.optimal_power_sum ~k:0 ~machines:1 [ (0, 1) ]);
      (fun () -> Brute.optimal_power_sum ~k:1 ~machines:0 [ (0, 1) ]);
      (fun () -> Brute.optimal_power_sum ~k:1 ~machines:1 [ (-1, 1) ]);
      (fun () -> Brute.optimal_power_sum ~k:1 ~machines:1 [ (0, 0) ]);
      (fun () -> Brute.optimal_power_sum ~k:1 ~machines:1 (List.init 9 (fun i -> (i, 1))));
    ]

(* ------------------------------------------------------------------ *)
(* LP bound                                                            *)
(* ------------------------------------------------------------------ *)

let inst_of_ints jobs =
  Rr_workload.Instance.of_jobs
    (List.map (fun (r, p) -> (Float.of_int r, Float.of_int p)) jobs)

let test_lp_single_job_value () =
  (* One job, size 1, released at 0, k = 1, delta = 1: the LP routes the
     unit of work into slot [0,1) at slot-start cost (0 + 1)/1 = 1. *)
  let inst = inst_of_ints [ (0, 1) ] in
  check_close "slot-start value" 1. (Lp_bound.value ~k:1 ~machines:1 ~delta:1. inst);
  (* Slot-end evaluation prices the same slot at (1 + 1)/1 = 2. *)
  check_close "slot-end value" 2.
    (Lp_bound.value ~mode:Lp_bound.Slot_end ~k:1 ~machines:1 ~delta:1. inst)

let test_lp_gamma_scales () =
  let inst = inst_of_ints [ (0, 1); (1, 2) ] in
  let v1 = Lp_bound.value ~k:2 ~machines:1 ~delta:0.5 inst in
  let v3 = Lp_bound.value ~gamma:3. ~k:2 ~machines:1 ~delta:0.5 inst in
  check_close "gamma multiplies the objective" (3. *. v1) v3

let test_lp_validation () =
  let inst = inst_of_ints [ (0, 1) ] in
  List.iter
    (fun f ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected lp validation failure")
    [
      (fun () -> ignore (Lp_bound.value ~k:0 ~machines:1 ~delta:1. inst));
      (fun () -> ignore (Lp_bound.value ~k:1 ~machines:0 ~delta:1. inst));
      (fun () -> ignore (Lp_bound.value ~k:1 ~machines:1 ~delta:0. inst));
    ]

let test_lp_empty_instance () =
  check_close "empty" 0. (Lp_bound.value ~k:2 ~machines:1 ~delta:1. (Rr_workload.Instance.of_jobs []))

(* Random small integer instances. *)
let tiny_instance_gen =
  QCheck2.Gen.(
    let* n = int_range 1 4 in
    let* jobs = list_repeat n (pair (int_range 0 4) (int_range 1 4)) in
    let* machines = int_range 1 2 in
    let* k = int_range 1 2 in
    return (jobs, machines, k))

let prop_lp_sandwich =
  QCheck2.Test.make ~name:"LP_lo <= LP_hi and LP_lo <= 2 OPT^k" ~count:60 tiny_instance_gen
    (fun (jobs, machines, k) ->
      let total = List.fold_left (fun a (_, p) -> a + p) 0 jobs in
      QCheck2.assume (total <= 12);
      let inst = inst_of_ints jobs in
      let lo = Lp_bound.value ~k ~machines ~delta:0.25 inst in
      let hi = Lp_bound.value ~mode:Lp_bound.Slot_end ~k ~machines ~delta:0.25 inst in
      let opt = Brute.optimal_power_sum ~k ~machines jobs in
      lo <= hi +. 1e-6 && lo /. 2. <= opt +. 1e-6)

let prop_lp_finer_delta_monotone_feasible =
  (* Halving delta refines the relaxation; both stay below the continuous
     LP, and the coarse Slot_start value never exceeds the fine Slot_end
     value. *)
  QCheck2.Test.make ~name:"coarse lower mode <= fine upper mode" ~count:40 tiny_instance_gen
    (fun (jobs, machines, k) ->
      let total = List.fold_left (fun a (_, p) -> a + p) 0 jobs in
      QCheck2.assume (total <= 12);
      let inst = inst_of_ints jobs in
      let lo_coarse = Lp_bound.value ~k ~machines ~delta:0.5 inst in
      let hi_fine = Lp_bound.value ~mode:Lp_bound.Slot_end ~k ~machines ~delta:0.125 inst in
      lo_coarse <= hi_fine +. 1e-6)

let prop_srpt_upper_bounds_opt =
  QCheck2.Test.make ~name:"brute OPT <= SRPT power sum" ~count:60 tiny_instance_gen
    (fun (jobs, machines, k) ->
      let total = List.fold_left (fun a (_, p) -> a + p) 0 jobs in
      QCheck2.assume (total <= 12);
      let inst = inst_of_ints jobs in
      let opt = Brute.optimal_power_sum ~k ~machines jobs in
      let srpt =
        Temporal_fairness.Run.power_sum
          (Temporal_fairness.Run.config ~machines ~k ())
          Rr_policies.Srpt.policy inst
      in
      opt <= srpt +. 1e-6)

(* ------------------------------------------------------------------ *)
(* Sparse windows, interval certification, cheap filter                *)
(* ------------------------------------------------------------------ *)

let prop_sparse_equals_dense =
  (* Busy-period windows are an exactness-preserving sparsification: the
     LP value over windowed arcs equals the dense build in both
     evaluation modes, not merely bounds it. *)
  QCheck2.Test.make ~name:"sparse windows = dense network" ~count:40 tiny_instance_gen
    (fun (jobs, machines, k) ->
      let total = List.fold_left (fun a (_, p) -> a + p) 0 jobs in
      QCheck2.assume (total <= 12);
      let inst = inst_of_ints jobs in
      List.for_all
        (fun (mode, delta) ->
          let sparse = Lp_bound.value ~mode ~windows:Lp_bound.Sparse ~k ~machines ~delta inst in
          let dense = Lp_bound.value ~mode ~windows:Lp_bound.Dense ~k ~machines ~delta inst in
          Float.abs (sparse -. dense) <= 1e-9 *. (1. +. Float.abs dense))
        [
          (Lp_bound.Slot_start, 0.5);
          (Lp_bound.Slot_end, 0.5);
          (Lp_bound.Slot_start, 0.25);
          (Lp_bound.Slot_end, 0.25);
        ])

let prop_interval_gap_shrinks =
  (* Slot grids nest under halving, so the Slot_start value is
     non-decreasing and the Slot_end value non-increasing along the
     refinement chain: the certified gap shrinks monotonically. *)
  QCheck2.Test.make ~name:"certified gap shrinks as delta halves" ~count:40 tiny_instance_gen
    (fun (jobs, machines, k) ->
      let total = List.fold_left (fun a (_, p) -> a + p) 0 jobs in
      QCheck2.assume (total <= 12);
      let inst = inst_of_ints jobs in
      let bracket delta =
        ( Lp_bound.value ~k ~machines ~delta inst,
          Lp_bound.value ~mode:Lp_bound.Slot_end ~k ~machines ~delta inst )
      in
      let rec chain prev_gap = function
        | [] -> true
        | delta :: rest ->
            let lo, hi = bracket delta in
            let gap = hi -. lo in
            lo <= hi +. 1e-6 && gap <= prev_gap +. 1e-6 && chain gap rest
      in
      chain Float.infinity [ 1.0; 0.5; 0.25 ])

let prop_cheap_below_lp_below_srpt =
  (* The no-LP filter must sit under the bound it short-circuits, which in
     turn certifies at most the SRPT cost it is compared against:
     cheap <= LP/2 <= OPT^k <= SRPT power sum. *)
  QCheck2.Test.make ~name:"cheap filter <= LP bound <= SRPT cost" ~count:60 tiny_instance_gen
    (fun (jobs, machines, k) ->
      let total = List.fold_left (fun a (_, p) -> a + p) 0 jobs in
      QCheck2.assume (total <= 12);
      let inst = inst_of_ints jobs in
      let cheap = Lp_bound.cheap_lower_bound ~k ~machines inst in
      let lp_half = Lp_bound.opt_power_lower_bound ~k ~machines ~delta:0.25 inst in
      let opt = Brute.optimal_power_sum ~k ~machines jobs in
      let srpt =
        Temporal_fairness.Run.power_sum
          (Temporal_fairness.Run.config ~machines ~k ())
          Rr_policies.Srpt.policy inst
      in
      cheap <= lp_half +. 1e-6 && cheap <= opt +. 1e-6 && lp_half <= opt +. 1e-6
      && opt <= srpt +. 1e-6)

let test_value_interval_converges () =
  let inst = inst_of_ints [ (0, 1); (1, 2); (2, 1) ] in
  let tol = 0.05 in
  let itv = Lp_bound.value_interval ~tol ~k:2 ~machines:1 inst in
  Alcotest.(check bool) "lo <= hi" true (itv.Lp_bound.lo <= itv.Lp_bound.hi +. 1e-9);
  Alcotest.(check bool) "met tol" true
    (itv.Lp_bound.hi -. itv.Lp_bound.lo <= tol *. itv.Lp_bound.lo +. 1e-9);
  Alcotest.(check bool) "two solves per level" true
    (itv.Lp_bound.solves mod 2 = 0 && itv.Lp_bound.solves >= 2);
  (* The reported bracket is exactly the pair of mode evaluations at the
     converged delta. *)
  check_close "lo is Slot_start at final delta" itv.Lp_bound.lo
    (Lp_bound.value ~k:2 ~machines:1 ~delta:itv.Lp_bound.delta inst);
  check_close "hi is Slot_end at final delta" itv.Lp_bound.hi
    (Lp_bound.value ~mode:Lp_bound.Slot_end ~k:2 ~machines:1 ~delta:itv.Lp_bound.delta inst)

let test_value_interval_empty () =
  let itv = Lp_bound.value_interval ~tol:0.1 ~k:2 ~machines:1 (Rr_workload.Instance.of_jobs []) in
  check_close "empty lo" 0. itv.Lp_bound.lo;
  check_close "empty hi" 0. itv.Lp_bound.hi

(* ------------------------------------------------------------------ *)
(* LP solution extraction                                              *)
(* ------------------------------------------------------------------ *)

let test_solution_single_job () =
  let inst = inst_of_ints [ (0, 2) ] in
  let sol = Lp_bound.solve ~k:1 ~machines:1 ~delta:1. inst in
  (* Cheapest placement: one unit in each of the first two slots. *)
  Alcotest.(check (float 1e-9)) "matches value" (Lp_bound.value ~k:1 ~machines:1 ~delta:1. inst) sol.value;
  Alcotest.(check (float 1e-9)) "all work scheduled" 2.
    (List.fold_left (fun a (_, w) -> a +. w) 0. sol.allocation.(0));
  Alcotest.(check (float 1e-9)) "completes at slot 2" 2. (Lp_bound.completion_profile sol ~job:0)

let prop_solution_feasible =
  QCheck2.Test.make ~name:"LP solution is release-respecting and capacity-feasible" ~count:40
    tiny_instance_gen
    (fun (jobs, machines, k) ->
      let total = List.fold_left (fun a (_, p) -> a + p) 0 jobs in
      QCheck2.assume (total <= 12);
      let inst = inst_of_ints jobs in
      let delta = 0.5 in
      let sol = Lp_bound.solve ~k ~machines ~delta inst in
      let js = Array.of_list (Rr_workload.Instance.jobs inst) in
      let slot_load = Hashtbl.create 16 in
      let ok = ref true in
      Array.iteri
        (fun ji alloc ->
          let j = js.(ji) in
          let scheduled = List.fold_left (fun a (_, w) -> a +. w) 0. alloc in
          if Float.abs (scheduled -. j.Rr_engine.Job.size) > 1e-6 then ok := false;
          List.iter
            (fun (slot_start, w) ->
              (* Work may start inside the slot but never before release. *)
              if slot_start +. delta <= j.Rr_engine.Job.arrival +. 1e-9 then ok := false;
              if w < -1e-9 then ok := false;
              let prev = Option.value ~default:0. (Hashtbl.find_opt slot_load slot_start) in
              Hashtbl.replace slot_load slot_start (prev +. w))
            alloc)
        sol.allocation;
      Hashtbl.iter
        (fun _ load -> if load > (Float.of_int machines *. delta) +. 1e-6 then ok := false)
        slot_load;
      !ok)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_lp_sandwich;
      prop_lp_finer_delta_monotone_feasible;
      prop_srpt_upper_bounds_opt;
      prop_solution_feasible;
      prop_sparse_equals_dense;
      prop_interval_gap_shrinks;
      prop_cheap_below_lp_below_srpt;
    ]

let () =
  Alcotest.run "rr_lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "basic le" `Quick test_simplex_basic_le;
          Alcotest.test_case "ge and eq" `Quick test_simplex_ge_eq;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "negative rhs" `Quick test_simplex_negative_rhs;
          Alcotest.test_case "validation" `Quick test_simplex_validation;
        ] );
      ( "brute",
        [
          Alcotest.test_case "single job" `Quick test_brute_single_job;
          Alcotest.test_case "two jobs" `Quick test_brute_two_jobs_srpt_order;
          Alcotest.test_case "two machines" `Quick test_brute_uses_both_machines;
          Alcotest.test_case "release times" `Quick test_brute_respects_release;
          Alcotest.test_case "validation" `Quick test_brute_validation;
        ] );
      ( "lp bound",
        [
          Alcotest.test_case "single job value" `Quick test_lp_single_job_value;
          Alcotest.test_case "gamma scales" `Quick test_lp_gamma_scales;
          Alcotest.test_case "validation" `Quick test_lp_validation;
          Alcotest.test_case "empty" `Quick test_lp_empty_instance;
          Alcotest.test_case "solution extraction" `Quick test_solution_single_job;
          Alcotest.test_case "interval converges" `Quick test_value_interval_converges;
          Alcotest.test_case "interval empty" `Quick test_value_interval_empty;
        ] );
      ("properties", qsuite);
    ]
