(* Tests for the policy implementations: rate shapes, hand schedules,
   optimality cross-checks, and the capped proportional allocation. *)

open Rr_engine

let job ~id ~arrival ~size = Job.make ~id ~arrival ~size
let check_close ?(tol = 1e-9) msg a b = Alcotest.(check (float tol)) msg a b

let view ~id ~arrival ~attained ?size ?remaining () =
  { Policy.id; arrival; attained; size; remaining }

(* ------------------------------------------------------------------ *)
(* Round Robin                                                         *)
(* ------------------------------------------------------------------ *)

let test_rr_rates () =
  let views = Array.init 5 (fun id -> view ~id ~arrival:0. ~attained:0. ()) in
  let d = Rr_policies.Round_robin.policy.allocate ~now:0. ~machines:2 ~speed:1. views in
  Array.iter (fun r -> check_close "share m/n" 0.4 r) d.Policy.rates;
  let d1 = Rr_policies.Round_robin.policy.allocate ~now:0. ~machines:8 ~speed:1. views in
  Array.iter (fun r -> check_close "capped at 1" 1. r) d1.Policy.rates

let test_rr_nonclairvoyant () =
  Alcotest.(check bool) "rr hides sizes" false
    Rr_policies.Round_robin.policy.clairvoyant

(* ------------------------------------------------------------------ *)
(* SRPT optimality for total flow on one machine                       *)
(* ------------------------------------------------------------------ *)

let test_srpt_matches_brute_l1 () =
  (* SRPT is exactly optimal for l1 on a single machine; compare against
     the brute-force optimum on integer instances. *)
  List.iter
    (fun jobs ->
      let brute = Rr_lp.Brute.optimal_power_sum ~k:1 ~machines:1 jobs in
      let sim_jobs =
        List.mapi
          (fun id (r, p) -> job ~id ~arrival:(Float.of_int r) ~size:(Float.of_int p))
          (List.stable_sort compare jobs)
      in
      let res = Simulator.run ~machines:1 ~policy:Rr_policies.Srpt.policy sim_jobs in
      check_close ~tol:1e-6 "srpt = opt for l1/m=1" brute (Simulator.total_flow res))
    [
      [ (0, 3); (1, 1); (2, 2) ];
      [ (0, 1); (0, 2); (0, 3) ];
      [ (0, 4); (2, 1); (3, 1); (4, 2) ];
      [ (0, 2); (5, 2) ];
    ]

(* ------------------------------------------------------------------ *)
(* SJF vs SRPT difference                                              *)
(* ------------------------------------------------------------------ *)

let test_sjf_uses_original_size () =
  (* Big job has run down to remaining 1 when a size-2 job arrives: SRPT
     would favour the short-remaining big job only after...  Construct:
     size 5 at t=0, size 2 at t=4 (big job remaining 1 < 2): SRPT finishes
     big at 5, newcomer at 7.  SJF compares original sizes (5 vs 2) and
     preempts, finishing the newcomer at 6 first. *)
  let jobs = [ job ~id:0 ~arrival:0. ~size:5.; job ~id:1 ~arrival:4. ~size:2. ] in
  let srpt_res = Simulator.run ~machines:1 ~policy:Rr_policies.Srpt.policy jobs in
  check_close "srpt big first" 5. srpt_res.completions.(0);
  check_close "srpt newcomer second" 7. srpt_res.completions.(1);
  let sjf_res = Simulator.run ~machines:1 ~policy:Rr_policies.Sjf.policy jobs in
  check_close "sjf newcomer first" 6. sjf_res.completions.(1);
  check_close "sjf big second" 7. sjf_res.completions.(0)

(* ------------------------------------------------------------------ *)
(* FCFS                                                                *)
(* ------------------------------------------------------------------ *)

let test_fcfs_no_preemption () =
  let jobs = [ job ~id:0 ~arrival:0. ~size:5.; job ~id:1 ~arrival:1. ~size:1. ] in
  let res = Simulator.run ~machines:1 ~policy:Rr_policies.Fcfs.policy jobs in
  check_close "first job runs to completion" 5. res.completions.(0);
  check_close "second queues" 6. res.completions.(1)

(* ------------------------------------------------------------------ *)
(* SETF                                                                *)
(* ------------------------------------------------------------------ *)

(* SETF with jobs of size 1 and 2 released together behaves like RR until
   the small job finishes (equal attained service), then serves the big one
   alone: identical completions to RR here. *)
let test_setf_equal_attained_shares () =
  let jobs = [ job ~id:0 ~arrival:0. ~size:1.; job ~id:1 ~arrival:0. ~size:2. ] in
  let res = Simulator.run ~machines:1 ~policy:Rr_policies.Setf.policy jobs in
  check_close "small" 2. res.completions.(0);
  check_close "large" 3. res.completions.(1)

(* Staggered SETF: job0 (size 2) runs alone on [0,1) reaching attained 1.
   Job1 (size 2) arrives with attained 0 and runs EXCLUSIVELY until it
   catches up at t = 2 (attained 1 each); they then share at rate 1/2 until
   both finish at t = 4. *)
let test_setf_catch_up () =
  let jobs = [ job ~id:0 ~arrival:0. ~size:2.; job ~id:1 ~arrival:1. ~size:2. ] in
  let res = Simulator.run ~machines:1 ~policy:Rr_policies.Setf.policy jobs in
  check_close ~tol:1e-6 "job0" 4. res.completions.(0);
  check_close ~tol:1e-6 "job1" 4. res.completions.(1)

(* Three-way SETF merge: job0 alone reaches attained 2; job1 arrives at 2
   and catches up at t = 4 (attained 2 each); they share at rate 1/2 until
   job2 arrives at 5 (attained 2.5 each) and runs alone until catching up
   at t = 7.5; all three then share.  Sizes chosen so everyone completes
   together: 4 each -> remaining 1.5 each at t = 7.5, shared at 1/3:
   completion 7.5 + 4.5 = 12. *)
let test_setf_three_way_merge () =
  let jobs =
    [
      job ~id:0 ~arrival:0. ~size:4.;
      job ~id:1 ~arrival:2. ~size:4.;
      job ~id:2 ~arrival:5. ~size:4.;
    ]
  in
  let res = Simulator.run ~machines:1 ~policy:Rr_policies.Setf.policy jobs in
  Array.iter (fun c -> check_close ~tol:1e-6 "all complete together" 12. c) res.completions

(* The newcomer is served exclusively while behind: job1 smaller than the
   head start never lets job0 resume before it finishes. *)
let test_setf_newcomer_priority () =
  let jobs = [ job ~id:0 ~arrival:0. ~size:3.; job ~id:1 ~arrival:2. ~size:1. ] in
  let res = Simulator.run ~machines:1 ~policy:Rr_policies.Setf.policy jobs in
  check_close ~tol:1e-6 "newcomer immediate" 3. res.completions.(1);
  check_close ~tol:1e-6 "job0 delayed by 1" 4. res.completions.(0)

(* ------------------------------------------------------------------ *)
(* LAPS                                                                *)
(* ------------------------------------------------------------------ *)

let test_laps_beta_validation () =
  List.iter
    (fun beta ->
      match Rr_policies.Laps.policy ~beta with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "expected rejection of beta = %g" beta)
    [ 0.; -0.5; 1.5 ]

let test_laps_shares_latest () =
  (* Four jobs alive, beta = 0.5 -> the 2 latest arrivals share the machine. *)
  let views =
    Array.init 4 (fun id -> view ~id ~arrival:(Float.of_int id) ~attained:0. ())
  in
  let laps = Rr_policies.Laps.policy ~beta:0.5 in
  let d = laps.allocate ~now:10. ~machines:1 ~speed:1. views in
  check_close "oldest gets nothing" 0. d.Policy.rates.(0);
  check_close "second oldest gets nothing" 0. d.Policy.rates.(1);
  check_close "latest shares" 0.5 d.Policy.rates.(2);
  check_close "latest shares'" 0.5 d.Policy.rates.(3)

let test_laps_one_is_rr () =
  let views = Array.init 4 (fun id -> view ~id ~arrival:0. ~attained:0. ()) in
  let laps = Rr_policies.Laps.policy ~beta:1.0 in
  let d = laps.allocate ~now:1. ~machines:1 ~speed:1. views in
  Array.iter (fun r -> check_close "all share" 0.25 r) d.Policy.rates

(* ------------------------------------------------------------------ *)
(* Age-weighted RR                                                     *)
(* ------------------------------------------------------------------ *)

let test_proportional_rates_underloaded () =
  let rates = Rr_policies.Wrr_age.proportional_rates ~machines:4 ~ids:[| 0; 1; 2 |] [| 1.; 5.; 2. |] in
  Array.iter (fun r -> check_close "all run" 1. r) rates

let test_proportional_rates_proportional () =
  let rates = Rr_policies.Wrr_age.proportional_rates ~machines:1 ~ids:[| 0; 1 |] [| 1.; 3. |] in
  check_close "light job" 0.25 rates.(0);
  check_close "heavy job" 0.75 rates.(1)

let test_proportional_rates_capping () =
  (* One dominant weight is capped at a full machine; the leftover machine
     is split proportionally among the others. *)
  let rates = Rr_policies.Wrr_age.proportional_rates ~machines:2 ~ids:[| 0; 1; 2 |] [| 100.; 1.; 1. |] in
  check_close "capped" 1. rates.(0);
  check_close "leftover split" 0.5 rates.(1);
  check_close "leftover split'" 0.5 rates.(2)

let prop_proportional_rates_feasible =
  QCheck2.Test.make ~name:"proportional rates are feasible" ~count:300
    QCheck2.Gen.(
      pair (int_range 1 6) (list_size (int_range 1 20) (float_range 0.001 100.)))
    (fun (machines, weights) ->
      let w = Array.of_list weights in
      let rates =
        Rr_policies.Wrr_age.proportional_rates ~machines
          ~ids:(Array.init (Array.length w) Fun.id)
          w
      in
      let sum = Array.fold_left ( +. ) 0. rates in
      Array.for_all (fun r -> r >= -1e-9 && r <= 1. +. 1e-9) rates
      && sum <= Float.of_int machines +. 1e-6
      && (Array.length w <= machines || sum >= Float.of_int machines -. 1e-6))

let prop_proportional_rates_monotone =
  QCheck2.Test.make ~name:"larger weight gets no smaller rate" ~count:300
    QCheck2.Gen.(
      pair (int_range 1 4) (list_size (int_range 2 15) (float_range 0.001 50.)))
    (fun (machines, weights) ->
      let w = Array.of_list weights in
      let rates =
        Rr_policies.Wrr_age.proportional_rates ~machines
          ~ids:(Array.init (Array.length w) Fun.id)
          w
      in
      let n = Array.length w in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if w.(i) > w.(j) && rates.(i) < rates.(j) -. 1e-9 then ok := false
        done
      done;
      !ok)

let test_wrr_age_k1_is_rr_like () =
  (* k = 1 weights are all 1: allocation matches plain RR. *)
  let jobs = [ job ~id:0 ~arrival:0. ~size:1.; job ~id:1 ~arrival:0. ~size:2. ] in
  let wrr = Rr_policies.Wrr_age.policy ~k:1 () in
  let res = Simulator.run ~machines:1 ~policy:wrr jobs in
  check_close ~tol:1e-6 "small like rr" 2. res.completions.(0);
  check_close ~tol:1e-6 "large like rr" 3. res.completions.(1)

let test_wrr_age_completes () =
  let jobs = List.init 20 (fun id -> job ~id ~arrival:(Float.of_int id *. 0.3) ~size:1.) in
  let wrr = Rr_policies.Wrr_age.policy ~k:2 () in
  let res = Simulator.run ~machines:1 ~policy:wrr jobs in
  Array.iter (fun c -> Alcotest.(check bool) "finite" true (Float.is_finite c)) res.completions

let test_wrr_param_validation () =
  List.iter
    (fun f ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected parameter rejection")
    [
      (fun () -> Rr_policies.Wrr_age.policy ~k:0 ());
      (fun () -> Rr_policies.Wrr_age.policy ~refresh:0. ~k:2 ());
      (fun () -> Rr_policies.Wrr_age.policy ~offset:0. ~k:2 ());
    ]

(* ------------------------------------------------------------------ *)
(* Quantum (time-sliced) RR                                            *)
(* ------------------------------------------------------------------ *)

let test_quantum_validation () =
  match Rr_policies.Quantum_rr.policy ~quantum:0. () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected quantum validation failure"

let test_quantum_single_job () =
  let res =
    Simulator.run ~machines:1
      ~policy:(Rr_policies.Quantum_rr.policy ~quantum:0.5 ())
      [ job ~id:0 ~arrival:0. ~size:2. ]
  in
  check_close ~tol:1e-6 "runs through consecutive quanta" 2. res.completions.(0)

(* Two size-2 jobs, quantum 1, one machine: J0 on [0,1), J1 on [1,2),
   J0 on [2,3) completing, J1 on [3,4) completing. *)
let test_quantum_alternation () =
  let res =
    Simulator.run ~machines:1
      ~policy:(Rr_policies.Quantum_rr.policy ~quantum:1. ())
      [ job ~id:0 ~arrival:0. ~size:2.; job ~id:1 ~arrival:0. ~size:2. ]
  in
  check_close ~tol:1e-6 "first admitted finishes first" 3. res.completions.(0);
  check_close ~tol:1e-6 "second alternates" 4. res.completions.(1)

let test_quantum_multimachine () =
  let res =
    Simulator.run ~machines:2
      ~policy:(Rr_policies.Quantum_rr.policy ~quantum:1. ())
      [ job ~id:0 ~arrival:0. ~size:1.5; job ~id:1 ~arrival:0. ~size:1. ]
  in
  check_close ~tol:1e-6 "parallel slot 0" 1.5 res.completions.(0);
  check_close ~tol:1e-6 "parallel slot 1" 1. res.completions.(1)

let test_quantum_converges_to_fluid_rr () =
  let jobs =
    List.init 12 (fun id -> job ~id ~arrival:(Float.of_int id *. 0.7) ~size:(1. +. (0.3 *. Float.of_int (id mod 4))))
  in
  let fluid = Simulator.run ~machines:1 ~policy:Rr_policies.Round_robin.policy jobs in
  let sliced =
    Simulator.run ~machines:1 ~policy:(Rr_policies.Quantum_rr.policy ~quantum:0.01 ()) jobs
  in
  Array.iteri
    (fun i c ->
      if Float.abs (c -. fluid.completions.(i)) > 0.2 then
        Alcotest.failf "job %d: sliced %g vs fluid %g" i c fluid.completions.(i))
    sliced.completions

let test_quantum_policy_reuse_resets () =
  let jobs = [ job ~id:0 ~arrival:0. ~size:2.; job ~id:1 ~arrival:0. ~size:2. ] in
  let policy = Rr_policies.Quantum_rr.policy ~quantum:1. () in
  let first = Simulator.run ~machines:1 ~policy jobs in
  let second = Simulator.run ~machines:1 ~policy jobs in
  Alcotest.(check (array (float 1e-9)))
    "identical across reuse" first.completions second.completions

(* ------------------------------------------------------------------ *)
(* MLFQ                                                                *)
(* ------------------------------------------------------------------ *)

let test_mlfq_levels () =
  let level = Rr_policies.Mlfq.level_of_attained ~base_quantum:1. ~factor:2. ~levels:5 in
  Alcotest.(check int) "fresh job" 0 (level 0.);
  Alcotest.(check int) "below first threshold" 0 (level 0.99);
  Alcotest.(check int) "at first threshold" 1 (level 1.);
  (* thresholds at 1, 3, 7, 15 *)
  Alcotest.(check int) "second" 2 (level 3.);
  Alcotest.(check int) "third" 3 (level 7.);
  Alcotest.(check int) "capped at last level" 4 (level 1000.)

let test_mlfq_validation () =
  List.iter
    (fun f ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected mlfq validation failure")
    [
      (fun () -> Rr_policies.Mlfq.policy ~base_quantum:0. ());
      (fun () -> Rr_policies.Mlfq.policy ~factor:0.5 ());
      (fun () -> Rr_policies.Mlfq.policy ~levels:0 ());
    ]

(* Short job vs long job under MLFQ: the short one (size <= base quantum)
   finishes in the top level; only then is the long one demoted further.
   Sizes 0.5 and 3, base quantum 1: both share level 0 on [0, 1) (rates
   1/2 each); the short finishes exactly at t = 1.  The long job then runs
   alone: it is demoted but always served, completing at 1 + 2.5 = 3.5. *)
let test_mlfq_short_protected () =
  let jobs = [ job ~id:0 ~arrival:0. ~size:0.5; job ~id:1 ~arrival:0. ~size:3. ] in
  let res = Simulator.run ~machines:1 ~policy:(Rr_policies.Mlfq.policy ~base_quantum:1. ()) jobs in
  check_close ~tol:1e-6 "short done in top level" 1. res.completions.(0);
  check_close ~tol:1e-6 "long continues" 3.5 res.completions.(1)

(* A demoted long job starves while fresh short jobs keep the top level
   busy — exactly SETF-like behaviour. *)
let test_mlfq_prefers_fresh_jobs () =
  let jobs = [ job ~id:0 ~arrival:0. ~size:2.; job ~id:1 ~arrival:1.5 ~size:0.25 ] in
  (* Job 0 consumes its level-0 quantum (1.0) by t = 1 and is demoted.  It
     runs alone until the short job arrives at 1.5 with level 0 priority,
     preempting it completely for 0.25 time units. *)
  let res = Simulator.run ~machines:1 ~policy:(Rr_policies.Mlfq.policy ~base_quantum:1. ()) jobs in
  check_close ~tol:1e-6 "newcomer served instantly" 0.25 (Simulator.flows res).(1);
  check_close ~tol:1e-6 "long job pauses" 2.25 res.completions.(0)

let test_mlfq_tiny_quantum_approximates_setf () =
  let jobs =
    List.init 10 (fun id -> job ~id ~arrival:(Float.of_int id *. 0.6) ~size:(0.4 +. (0.2 *. Float.of_int (id mod 3))))
  in
  let setf = Simulator.run ~machines:1 ~policy:Rr_policies.Setf.policy jobs in
  let mlfq =
    Simulator.run ~machines:1
      ~policy:(Rr_policies.Mlfq.policy ~base_quantum:0.01 ~factor:1.1 ~levels:150 ())
      jobs
  in
  Array.iteri
    (fun i c ->
      if Float.abs (c -. setf.completions.(i)) > 0.2 then
        Alcotest.failf "job %d: mlfq %g vs setf %g" i c setf.completions.(i))
    mlfq.completions

(* ------------------------------------------------------------------ *)
(* Static-weight RR                                                    *)
(* ------------------------------------------------------------------ *)

let test_wrr_static_shares () =
  (* Weights 3 and 1 on one machine: rates 0.75 / 0.25. *)
  let weight_of = function 0 -> 3. | _ -> 1. in
  let policy = Rr_policies.Wrr_static.policy ~weight_of () in
  let views = [| view ~id:0 ~arrival:0. ~attained:0. (); view ~id:1 ~arrival:0. ~attained:0. () |] in
  let d = policy.allocate ~now:0. ~machines:1 ~speed:1. views in
  check_close "heavy" 0.75 d.Policy.rates.(0);
  check_close "light" 0.25 d.Policy.rates.(1)

let test_wrr_static_equal_weights_is_rr () =
  let jobs = [ job ~id:0 ~arrival:0. ~size:1.; job ~id:1 ~arrival:0. ~size:2. ] in
  let policy = Rr_policies.Wrr_static.policy ~weight_of:(fun _ -> 1.) () in
  let res = Simulator.run ~machines:1 ~policy jobs in
  check_close "same as rr" 2. res.completions.(0);
  check_close "same as rr'" 3. res.completions.(1)

let test_wrr_static_rejects_bad_weight () =
  let policy = Rr_policies.Wrr_static.policy ~weight_of:(fun _ -> 0.) () in
  match Simulator.run ~machines:1 ~policy [ job ~id:0 ~arrival:0. ~size:1. ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected weight rejection"

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry_find () =
  let module R = Rr_policies.Registry in
  List.iter
    (fun name ->
      match R.spec_of_string name with
      | Ok spec -> ignore (R.make spec : Rr_engine.Policy.t)
      | Error msg -> Alcotest.failf "registry misses %s: %s" name msg)
    [
      "rr"; "srpt"; "sjf"; "setf"; "fcfs"; "laps"; "laps:0.25"; "wrr-age"; "wrr-age:3";
      "quantum-rr"; "quantum-rr:0.5";
    ];
  List.iter
    (fun name ->
      match R.spec_of_string name with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "registry should reject %s" name)
    [ "nope"; "laps:2.0"; "laps:x"; "wrr-age:0"; "quantum-rr:0" ];
  (* An unknown name's error must steer the user to the valid surface
     forms. *)
  match R.spec_of_string "nope" with
  | Error msg ->
      Alcotest.(check bool)
        "unknown-policy error lists valid names" true
        (List.for_all
           (fun name ->
             let rec contains i =
               i + String.length name <= String.length msg
               && (String.sub msg i (String.length name) = name || contains (i + 1))
             in
             contains 0)
           [ "rr"; "srpt"; "laps" ])
  | Ok _ -> Alcotest.fail "nope should not parse"

let test_registry_spec_of_string () =
  let module R = Rr_policies.Registry in
  List.iter
    (fun (name, expected) ->
      match R.spec_of_string name with
      | Ok spec when spec = expected -> ()
      | Ok spec -> Alcotest.failf "%s parsed to %s" name (R.spec_to_string spec)
      | Error e -> Alcotest.failf "%s rejected: %s" name e)
    [
      ("rr", R.Rr); ("srpt", R.Srpt); ("sjf", R.Sjf); ("setf", R.Setf); ("fcfs", R.Fcfs);
      ("laps", R.Laps 0.5); ("laps:0.25", R.Laps 0.25);
      ("wrr-age", R.Wrr_age 2); ("wrr-age:3", R.Wrr_age 3);
      ("quantum-rr", R.Quantum_rr 1.); ("quantum-rr:0.5", R.Quantum_rr 0.5);
      ("mlfq", R.Mlfq 0.5); ("mlfq:2.0", R.Mlfq 2.0);
      ("hdf", R.Hdf 2.); ("hdf:1.5", R.Hdf 1.5);
      ("wrr-static", R.Wrr_static 1.); ("wrr-static:-0.5", R.Wrr_static (-0.5));
      ("hybrid", R.Hybrid 3.); ("hybrid:0.75", R.Hybrid 0.75);
      ("srpt-mig", R.Srpt_mig 1); ("srpt-mig:0", R.Srpt_mig 0); ("srpt-mig:4", R.Srpt_mig 4);
    ]

let test_registry_spec_errors () =
  let module R = Rr_policies.Registry in
  List.iter
    (fun name ->
      match R.spec_of_string name with
      | Error msg -> Alcotest.(check bool) (name ^ " has message") true (String.length msg > 0)
      | Ok spec -> Alcotest.failf "%s should be rejected, parsed to %s" name (R.spec_to_string spec))
    [
      "nope"; "laps:2.0"; "laps:x"; "wrr-age:0"; "quantum-rr:0"; "mlfq:0"; "rr:1";
      "hdf:inf"; "hdf:x"; "wrr-static:nan"; "hybrid:0"; "hybrid:-1"; "hybrid:inf";
      "srpt-mig:-1"; "srpt-mig:1.5";
    ];
  let contains ~sub s =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  (* A malformed parameter's error names the surface form it expected. *)
  List.iter
    (fun (input, form) ->
      match R.spec_of_string input with
      | Error msg ->
          Alcotest.(check bool) (input ^ " error names " ^ form) true (contains ~sub:form msg)
      | Ok spec -> Alcotest.failf "%s should be rejected, parsed to %s" input (R.spec_to_string spec))
    [
      ("hdf:x", "hdf:<alpha>");
      ("wrr-static:nan", "wrr-static:<gamma>");
      ("hybrid:0", "hybrid:<theta>");
      ("srpt-mig:1.5", "srpt-mig:<budget>");
    ];
  (* the unknown-policy error enumerates the valid names *)
  match R.spec_of_string "nope" with
  | Error msg ->
      List.iter
        (fun n -> Alcotest.(check bool) ("error mentions " ^ n) true (contains ~sub:n msg))
        (R.names ())
  | Ok _ -> Alcotest.fail "nope should be rejected"

let test_registry_spec_round_trip () =
  let module R = Rr_policies.Registry in
  List.iter
    (fun spec ->
      match R.spec_of_string (R.spec_to_string spec) with
      | Ok spec' when spec' = spec -> ()
      | Ok spec' ->
          Alcotest.failf "%s round-tripped to %s" (R.spec_to_string spec) (R.spec_to_string spec')
      | Error e -> Alcotest.failf "%s rejected on round trip: %s" (R.spec_to_string spec) e)
    (R.default_specs ()
    @ R.
        [
          Laps 0.25; Wrr_age 5; Quantum_rr 0.25; Mlfq 2.; Hdf 1.5; Wrr_static (-1.);
          Hybrid 0.75; Srpt_mig 3;
        ])

let test_registry_make_fresh () =
  (* make returns a fresh closure each time: two quantum-rr policies must not
     share scheduling state. *)
  let module R = Rr_policies.Registry in
  let p1 = R.make (R.Quantum_rr 1.) and p2 = R.make (R.Quantum_rr 1.) in
  Alcotest.(check bool) "distinct closures" false (p1 == p2);
  match R.make (R.Laps 7.) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "make should reject invalid params"

let test_registry_all_run () =
  let jobs = List.init 8 (fun id -> job ~id ~arrival:(Float.of_int id *. 0.5) ~size:1.) in
  List.iter
    (fun policy ->
      let res = Simulator.run ~machines:2 ~policy jobs in
      Array.iter
        (fun c -> Alcotest.(check bool) (policy.Policy.name ^ " completes") true (Float.is_finite c))
        res.completions)
    (Rr_policies.Registry.all ())

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_proportional_rates_feasible; prop_proportional_rates_monotone ]

let () =
  Alcotest.run "rr_policies"
    [
      ( "round robin",
        [
          Alcotest.test_case "rates" `Quick test_rr_rates;
          Alcotest.test_case "non-clairvoyant" `Quick test_rr_nonclairvoyant;
        ] );
      ( "srpt/sjf",
        [
          Alcotest.test_case "srpt optimal l1" `Quick test_srpt_matches_brute_l1;
          Alcotest.test_case "sjf original size" `Quick test_sjf_uses_original_size;
        ] );
      ("fcfs", [ Alcotest.test_case "no preemption" `Quick test_fcfs_no_preemption ]);
      ( "setf",
        [
          Alcotest.test_case "equal attained" `Quick test_setf_equal_attained_shares;
          Alcotest.test_case "catch up" `Quick test_setf_catch_up;
          Alcotest.test_case "three-way merge" `Quick test_setf_three_way_merge;
          Alcotest.test_case "newcomer priority" `Quick test_setf_newcomer_priority;
        ] );
      ( "laps",
        [
          Alcotest.test_case "beta validation" `Quick test_laps_beta_validation;
          Alcotest.test_case "shares latest" `Quick test_laps_shares_latest;
          Alcotest.test_case "beta 1 is rr" `Quick test_laps_one_is_rr;
        ] );
      ( "wrr-age",
        [
          Alcotest.test_case "underloaded" `Quick test_proportional_rates_underloaded;
          Alcotest.test_case "proportional" `Quick test_proportional_rates_proportional;
          Alcotest.test_case "capping" `Quick test_proportional_rates_capping;
          Alcotest.test_case "k=1 like rr" `Quick test_wrr_age_k1_is_rr_like;
          Alcotest.test_case "completes" `Quick test_wrr_age_completes;
          Alcotest.test_case "param validation" `Quick test_wrr_param_validation;
        ] );
      ( "quantum-rr",
        [
          Alcotest.test_case "validation" `Quick test_quantum_validation;
          Alcotest.test_case "single job" `Quick test_quantum_single_job;
          Alcotest.test_case "alternation" `Quick test_quantum_alternation;
          Alcotest.test_case "multi-machine" `Quick test_quantum_multimachine;
          Alcotest.test_case "converges to fluid" `Quick test_quantum_converges_to_fluid_rr;
          Alcotest.test_case "reuse resets" `Quick test_quantum_policy_reuse_resets;
        ] );
      ( "mlfq",
        [
          Alcotest.test_case "levels" `Quick test_mlfq_levels;
          Alcotest.test_case "validation" `Quick test_mlfq_validation;
          Alcotest.test_case "short protected" `Quick test_mlfq_short_protected;
          Alcotest.test_case "fresh priority" `Quick test_mlfq_prefers_fresh_jobs;
          Alcotest.test_case "approximates setf" `Quick test_mlfq_tiny_quantum_approximates_setf;
        ] );
      ( "wrr-static",
        [
          Alcotest.test_case "shares" `Quick test_wrr_static_shares;
          Alcotest.test_case "equal weights" `Quick test_wrr_static_equal_weights_is_rr;
          Alcotest.test_case "bad weight" `Quick test_wrr_static_rejects_bad_weight;
        ] );
      ( "registry",
        [
          Alcotest.test_case "find" `Quick test_registry_find;
          Alcotest.test_case "spec of string" `Quick test_registry_spec_of_string;
          Alcotest.test_case "spec errors" `Quick test_registry_spec_errors;
          Alcotest.test_case "spec round trip" `Quick test_registry_spec_round_trip;
          Alcotest.test_case "make fresh" `Quick test_registry_make_fresh;
          Alcotest.test_case "all run" `Quick test_registry_all_run;
        ] );
      ("properties", qsuite);
    ]
