(* Integration tests for the temporal_fairness facade: run/ratio/sweep and
   the full experiment suite at Quick scale. *)

open Temporal_fairness

let check_close ?(tol = 1e-9) msg a b = Alcotest.(check (float tol)) msg a b

let rr = Rr_policies.Round_robin.policy
let srpt = Rr_policies.Srpt.policy

let two_jobs = Rr_workload.Instance.of_jobs [ (0., 1.); (0., 2.) ]

(* ------------------------------------------------------------------ *)
(* Run                                                                 *)
(* ------------------------------------------------------------------ *)

let test_run_norm () =
  (* RR on sizes {1,2}: flows 2 and 3 -> l1 = 5, l2 = sqrt 13. *)
  check_close "l1" 5. (Run.norm (Run.config ~k:1 ()) rr two_jobs);
  check_close "l2" (sqrt 13.) (Run.norm Run.default rr two_jobs);
  check_close "power sum" 13. (Run.power_sum Run.default rr two_jobs)

let test_run_flows_order () =
  let flows = Run.flows Run.default srpt two_jobs in
  check_close "small job flow" 1. flows.(0);
  check_close "large job flow" 3. flows.(1)

let test_run_speed () =
  check_close "speed halves flows" 2.5 (Run.norm (Run.config ~speed:2. ~k:1 ()) rr two_jobs)

let test_run_config_defaults () =
  (* Run.config () is Run.default, and overrides apply field-wise. *)
  Alcotest.(check bool) "default" true (Run.config () = Run.default);
  let cfg = Run.config ~machines:4 ~k:3 () in
  Alcotest.(check int) "machines" 4 cfg.Run.machines;
  Alcotest.(check int) "k" 3 cfg.Run.k;
  check_close "speed" 1. cfg.Run.speed

let test_run_measure () =
  let r = Run.measure (Run.config ~k:1 ()) rr two_jobs in
  check_close "norm" 5. r.Run.norm;
  check_close "power sum" 5. r.Run.power_sum;
  Alcotest.(check string) "policy name" "rr" r.Run.policy_name;
  Alcotest.(check int) "n" 2 r.Run.n;
  check_close "mean flow" 2.5 r.Run.mean_flow;
  check_close "max flow" 3. r.Run.max_flow;
  check_close "flow 0" 2. (Run.flows (Run.config ~k:1 ()) rr two_jobs).(0)

(* ------------------------------------------------------------------ *)
(* Ratio                                                               *)
(* ------------------------------------------------------------------ *)

let test_ratio_vs_baseline () =
  (* RR l1 = 5 vs SRPT l1 = 4. *)
  check_close "ratio" 1.25 (Ratio.vs_baseline (Run.config ~k:1 ()) rr two_jobs)

let test_ratio_identity () =
  check_close "policy vs itself" 1. (Ratio.vs_baseline ~baseline:rr Run.default rr two_jobs)

let test_ratio_vs_lp_at_least_implied () =
  (* The LP bound is a genuine lower bound on OPT, so the measured ratio
     against it must be at least the ratio against brute-force OPT. *)
  let inst = Rr_workload.Instance.of_jobs [ (0., 1.); (0., 3.); (1., 2.) ] in
  let lp_ratio = Ratio.vs_lp_bound ~delta:0.25 Run.default rr inst in
  let brute = Rr_lp.Brute.optimal_power_sum ~k:2 ~machines:1 [ (0, 1); (0, 3); (1, 2) ] in
  let true_ratio = Run.norm Run.default rr inst /. sqrt brute in
  Alcotest.(check bool) "lp ratio dominates true ratio" true (lp_ratio >= true_ratio -. 1e-9)

(* ------------------------------------------------------------------ *)
(* Sweep                                                               *)
(* ------------------------------------------------------------------ *)

let test_speeds_grid () =
  Alcotest.(check (list (float 1e-12))) "grid" [ 1.; 1.5; 2. ] (Sweep.speeds ~lo:1. ~hi:2. ~steps:3);
  match Sweep.speeds ~lo:2. ~hi:1. ~steps:3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected lo < hi validation"

let test_min_speed_for () =
  (* f(s) = 10 / s: threshold 2 crossed at s = 5. *)
  (match Sweep.min_speed_for ~f:(fun s -> 10. /. s) ~threshold:2. ~lo:1. ~hi:8. ~iters:30 () with
  | Ok s -> check_close ~tol:1e-6 "bisection" 5. s
  | Error _ -> Alcotest.fail "expected crossover");
  match Sweep.min_speed_for ~f:(fun _ -> 100.) ~threshold:2. ~lo:1. ~hi:8. ~iters:5 () with
  | Error `Above_hi -> ()
  | Ok _ | Error (`Bad_bracket _) -> Alcotest.fail "expected Above_hi when unreachable"

let test_min_speed_for_bad_bracket () =
  (* Misuse is distinguished from a missing crossover. *)
  (match Sweep.min_speed_for ~f:(fun _ -> 0.) ~threshold:2. ~lo:8. ~hi:1. ~iters:5 () with
  | Error (`Bad_bracket _) -> ()
  | Ok _ | Error `Above_hi -> Alcotest.fail "expected Bad_bracket for lo >= hi");
  match Sweep.min_speed_for ~f:(fun _ -> 0.) ~threshold:2. ~lo:1. ~hi:8. ~iters:0 () with
  | Error (`Bad_bracket _) -> ()
  | Ok _ | Error `Above_hi -> Alcotest.fail "expected Bad_bracket for iters < 1"

let test_min_speed_for_parallel_brackets () =
  (* A multi-domain pool narrows by (p+1)^iters instead of 2^iters, but
     converges to the same crossover. *)
  Temporal_fairness.Pool.with_pool ~domains:3 (fun pool ->
      match
        Sweep.min_speed_for ~pool ~f:(fun s -> 10. /. s) ~threshold:2. ~lo:1. ~hi:8. ~iters:15 ()
      with
      | Ok s -> check_close ~tol:1e-6 "parallel brackets" 5. s
      | Error _ -> Alcotest.fail "expected crossover")

(* ------------------------------------------------------------------ *)
(* Experiment suite at Quick scale                                     *)
(* ------------------------------------------------------------------ *)

let row_count table =
  (* Rendered table: title + header + separator + rows. *)
  List.length (String.split_on_char '\n' (Rr_util.Table.render table)) - 4

let test_all_experiments_produce_rows () =
  List.iter
    (fun table ->
      Alcotest.(check bool) "has rows" true (row_count table > 0))
    (Experiments.all Experiments.Quick)

let test_t8_all_sound () =
  let rendered = Rr_util.Table.render (Experiments.t8_lp_soundness Experiments.Quick) in
  Alcotest.(check bool) "no NO cells" false
    (List.exists
       (fun line -> List.mem "NO" (String.split_on_char ' ' line))
       (String.split_on_char '\n' rendered))

let test_t3_certificates_sound () =
  let rendered = Rr_util.Table.render (Experiments.t3_dual_certificates Experiments.Quick) in
  Alcotest.(check bool) "no NO cells" false
    (List.exists
       (fun line -> List.mem "NO" (String.split_on_char ' ' line))
       (String.split_on_char '\n' rendered))

let test_theorem_shape_l2 () =
  (* The headline claim, end to end: on a stochastic instance the l2 ratio
     of RR at the Theorem-1 speed against the *certified* LP lower bound is
     a small constant (far below the 2 gamma / eps the proof guarantees). *)
  let rng = Rr_util.Prng.create ~seed:3 in
  let inst =
    Rr_workload.Instance.generate_load ~rng
      ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
      ~load:0.9 ~machines:1 ~n:30 ()
  in
  let ratio = Ratio.vs_lp_bound ~delta:0.25 (Run.config ~speed:8. ()) rr inst in
  Alcotest.(check bool) "bounded" true (Float.is_finite ratio && ratio < 4.)

let test_rr_beats_srpt_on_l2_sometimes () =
  (* Temporal fairness in action: a batch of equal jobs where SRPT's serial
     order loses to RR... actually SRPT staggers completions and wins on l1;
     the check here is the reverse-direction sanity that ratios are finite
     and positive across policies. *)
  let inst = Rr_workload.Instance.of_jobs (List.init 6 (fun _ -> (0., 1.))) in
  let r = Ratio.vs_baseline Run.default rr inst in
  Alcotest.(check bool) "finite positive" true (Float.is_finite r && r > 0.)

let () =
  Alcotest.run "temporal_fairness"
    [
      ( "run",
        [
          Alcotest.test_case "norms" `Quick test_run_norm;
          Alcotest.test_case "flows order" `Quick test_run_flows_order;
          Alcotest.test_case "speed" `Quick test_run_speed;
          Alcotest.test_case "config defaults" `Quick test_run_config_defaults;
          Alcotest.test_case "measure" `Quick test_run_measure;
        ] );
      ( "ratio",
        [
          Alcotest.test_case "vs baseline" `Quick test_ratio_vs_baseline;
          Alcotest.test_case "identity" `Quick test_ratio_identity;
          Alcotest.test_case "lp dominates brute" `Quick test_ratio_vs_lp_at_least_implied;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "grid" `Quick test_speeds_grid;
          Alcotest.test_case "bisection" `Quick test_min_speed_for;
          Alcotest.test_case "bad bracket" `Quick test_min_speed_for_bad_bracket;
          Alcotest.test_case "parallel brackets" `Quick test_min_speed_for_parallel_brackets;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "all quick tables" `Slow test_all_experiments_produce_rows;
          Alcotest.test_case "t8 sound" `Quick test_t8_all_sound;
          Alcotest.test_case "t3 sound" `Quick test_t3_certificates_sound;
          Alcotest.test_case "theorem shape" `Quick test_theorem_shape_l2;
          Alcotest.test_case "ratios sane" `Quick test_rr_beats_srpt_on_l2_sometimes;
        ] );
    ]
