(* Tests for the closed-form queueing results and their agreement with the
   simulator (the T10 calibration, at test scale). *)

let check_close ?(tol = 1e-9) msg a b = Alcotest.(check (float tol)) msg a b

(* ------------------------------------------------------------------ *)
(* M/M/1 formulas                                                      *)
(* ------------------------------------------------------------------ *)

let test_mm1_values () =
  check_close "rho" 0.8 (Rr_queueing.Mm1.utilization ~lambda:0.8 ~mu:1.);
  check_close "L" 4. (Rr_queueing.Mm1.mean_jobs_in_system ~lambda:0.8 ~mu:1.);
  check_close "FCFS mean flow" 5. (Rr_queueing.Mm1.mean_flow_fcfs ~lambda:0.8 ~mu:1.);
  check_close "FCFS flow variance" 25. (Rr_queueing.Mm1.variance_flow_fcfs ~lambda:0.8 ~mu:1.);
  check_close "PS mean flow" 5. (Rr_queueing.Mm1.mean_flow_ps ~lambda:0.8 ~mu:1.);
  check_close "PS slowdown" 5. (Rr_queueing.Mm1.mean_slowdown_ps ~lambda:0.8 ~mu:1. ~size:3.)

let test_mm1_littles_law () =
  (* L = lambda W. *)
  let lambda = 0.6 and mu = 1.3 in
  check_close "Little's law"
    (Rr_queueing.Mm1.mean_jobs_in_system ~lambda ~mu)
    (lambda *. Rr_queueing.Mm1.mean_flow_fcfs ~lambda ~mu)

let test_mm1_validation () =
  List.iter
    (fun (lambda, mu) ->
      match Rr_queueing.Mm1.mean_flow_fcfs ~lambda ~mu with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "expected rejection of lambda=%g mu=%g" lambda mu)
    [ (0., 1.); (1., 1.); (1.5, 1.); (-1., 1.); (0.5, 0.) ]

(* ------------------------------------------------------------------ *)
(* M/G/1 formulas                                                      *)
(* ------------------------------------------------------------------ *)

let test_mg1_reduces_to_mm1 () =
  (* Exponential service: es2 = 2 es^2, and PK reduces to 1/(mu - lambda). *)
  let lambda = 0.7 and mu = 1. in
  let es = 1. /. mu in
  let es2 = 2. *. es *. es in
  check_close "PK = M/M/1"
    (Rr_queueing.Mm1.mean_flow_fcfs ~lambda ~mu)
    (Rr_queueing.Mg1.mean_flow_fcfs ~lambda ~es ~es2)

let test_mg1_deterministic_halves_wait () =
  (* M/D/1 waiting time is half the M/M/1 waiting time. *)
  let lambda = 0.5 and es = 1. in
  let wait_d = Rr_queueing.Mg1.mean_wait_fcfs ~lambda ~es ~es2:(es *. es) in
  let wait_m = Rr_queueing.Mg1.mean_wait_fcfs ~lambda ~es ~es2:(2. *. es *. es) in
  check_close "M/D/1 = M/M/1 / 2" (wait_m /. 2.) wait_d

let test_mg1_ps_insensitive () =
  check_close "PS mean flow depends only on the mean" 5.
    (Rr_queueing.Mg1.mean_flow_ps ~lambda:0.8 ~es:1.);
  check_close "conditional PS flow is linear" 10.
    (Rr_queueing.Mg1.conditional_flow_ps ~lambda:0.8 ~es:1. ~size:2.)

let test_second_moments () =
  check_close "deterministic" 4. (Rr_queueing.Mg1.second_moment (Rr_workload.Distribution.Deterministic 2.));
  check_close "exponential" 2. (Rr_queueing.Mg1.second_moment (Rr_workload.Distribution.Exponential { mean = 1. }));
  (* Uniform on [0.5, 1.5]: E[X^2] = (1.5^3 - 0.5^3)/3 = 3.25/3. *)
  check_close "uniform" (3.25 /. 3.)
    (Rr_queueing.Mg1.second_moment (Rr_workload.Distribution.Uniform { lo = 0.5; hi = 1.5 }));
  check_close "bimodal" (0.9 *. 0.25 +. 0.1 *. 30.25)
    (Rr_queueing.Mg1.second_moment
       (Rr_workload.Distribution.Bimodal { small = 0.5; large = 5.5; prob_large = 0.1 }));
  check_close "heavy pareto is infinite" Float.infinity
    (Rr_queueing.Mg1.second_moment (Rr_workload.Distribution.Pareto { alpha = 1.5; x_min = 1. }))

let test_second_moment_empirical () =
  (* Bounded-Pareto second moment against a Monte-Carlo estimate. *)
  let d = Rr_workload.Distribution.Bounded_pareto { alpha = 1.5; x_min = 0.5; x_max = 20. } in
  let analytic = Rr_queueing.Mg1.second_moment d in
  let rng = Rr_util.Prng.create ~seed:17 in
  let n = 400_000 in
  let acc = Rr_util.Kahan.create () in
  for _ = 1 to n do
    let x = Rr_workload.Distribution.sample rng d in
    Rr_util.Kahan.add acc (x *. x)
  done;
  let emp = Rr_util.Kahan.total acc /. Float.of_int n in
  if Float.abs (emp -. analytic) > 0.1 *. analytic then
    Alcotest.failf "second moment: analytic %g vs empirical %g" analytic emp

let test_mg1_validation () =
  List.iter
    (fun f ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Mg1 validation failure")
    [
      (fun () -> ignore (Rr_queueing.Mg1.mean_flow_ps ~lambda:1.2 ~es:1.));
      (fun () -> ignore (Rr_queueing.Mg1.mean_wait_fcfs ~lambda:0.5 ~es:1. ~es2:0.5));
      (fun () -> ignore (Rr_queueing.Mg1.conditional_flow_ps ~lambda:0.5 ~es:1. ~size:0.));
    ]

(* ------------------------------------------------------------------ *)
(* Simulator agreement (coarse: small n, loose tolerance)              *)
(* ------------------------------------------------------------------ *)

let simulated_mean policy sizes ~lambda ~n ~seeds =
  let one seed =
    let rng = Rr_util.Prng.create ~seed in
    let inst =
      Rr_workload.Instance.generate ~rng
        ~arrivals:(Rr_workload.Arrivals.Poisson { rate = lambda })
        ~sizes ~n ()
    in
    let flows = Temporal_fairness.Run.flows Temporal_fairness.Run.default policy inst in
    (* middle 80% to reduce warm-up/drain bias *)
    let lo = n / 10 and hi = n - (n / 10) in
    let acc = Rr_util.Kahan.create () in
    for i = lo to hi - 1 do
      Rr_util.Kahan.add acc flows.(i)
    done;
    Rr_util.Kahan.total acc /. Float.of_int (hi - lo)
  in
  let vals = List.map one seeds in
  Rr_util.Kahan.sum_list vals /. Float.of_int (List.length vals)

let test_simulated_mm1_fcfs () =
  let sim =
    simulated_mean Rr_policies.Fcfs.policy (Rr_workload.Distribution.Exponential { mean = 1. })
      ~lambda:0.7 ~n:8000 ~seeds:[ 1; 2; 3 ]
  in
  let analytic = Rr_queueing.Mm1.mean_flow_fcfs ~lambda:0.7 ~mu:1. in
  if Float.abs (sim -. analytic) > 0.15 *. analytic then
    Alcotest.failf "M/M/1 FCFS: simulated %g vs analytic %g" sim analytic

let test_simulated_mm1_ps () =
  let sim =
    simulated_mean Rr_policies.Round_robin.policy
      (Rr_workload.Distribution.Exponential { mean = 1. })
      ~lambda:0.7 ~n:8000 ~seeds:[ 1; 2; 3 ]
  in
  let analytic = Rr_queueing.Mm1.mean_flow_ps ~lambda:0.7 ~mu:1. in
  if Float.abs (sim -. analytic) > 0.15 *. analytic then
    Alcotest.failf "M/M/1 PS: simulated %g vs analytic %g" sim analytic

let test_simulated_ps_insensitivity () =
  (* RR's mean flow should match for exponential and bimodal sizes of the
     same mean, despite very different variance. *)
  let lambda = 0.7 in
  let exp_mean =
    simulated_mean Rr_policies.Round_robin.policy
      (Rr_workload.Distribution.Exponential { mean = 1. })
      ~lambda ~n:8000 ~seeds:[ 4; 5; 6 ]
  in
  let bim_mean =
    simulated_mean Rr_policies.Round_robin.policy
      (Rr_workload.Distribution.Bimodal { small = 0.5; large = 5.5; prob_large = 0.1 })
      ~lambda ~n:8000 ~seeds:[ 4; 5; 6 ]
  in
  if Float.abs (exp_mean -. bim_mean) > 0.2 *. exp_mean then
    Alcotest.failf "PS insensitivity violated: %g vs %g" exp_mean bim_mean

let () =
  Alcotest.run "rr_queueing"
    [
      ( "mm1",
        [
          Alcotest.test_case "values" `Quick test_mm1_values;
          Alcotest.test_case "little's law" `Quick test_mm1_littles_law;
          Alcotest.test_case "validation" `Quick test_mm1_validation;
        ] );
      ( "mg1",
        [
          Alcotest.test_case "reduces to mm1" `Quick test_mg1_reduces_to_mm1;
          Alcotest.test_case "m/d/1 halves wait" `Quick test_mg1_deterministic_halves_wait;
          Alcotest.test_case "ps insensitive" `Quick test_mg1_ps_insensitive;
          Alcotest.test_case "second moments" `Quick test_second_moments;
          Alcotest.test_case "second moment empirical" `Quick test_second_moment_empirical;
          Alcotest.test_case "validation" `Quick test_mg1_validation;
        ] );
      ( "simulator agreement",
        [
          Alcotest.test_case "m/m/1 fcfs" `Slow test_simulated_mm1_fcfs;
          Alcotest.test_case "m/m/1 ps" `Slow test_simulated_mm1_ps;
          Alcotest.test_case "ps insensitivity" `Slow test_simulated_ps_insensitivity;
        ] );
    ]
