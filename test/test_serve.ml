(* Tests for the serving layer (lib/serve) and Live.submit_batch.

   The load-bearing properties:

   - rings: FIFO byte queues whose readable region stays contiguous
     across interleaved adds, consumes, compactions and growth;
   - frames: every fixed-width field round-trips the wire bit-exactly
     (STATS payloads decode to the same 15 bit patterns they encoded);
   - submit_batch: bit-identical to repeated submit, and atomic — a
     rejected batch leaves the engine untouched;
   - the multiplexed binary server: a socket-fed run reproduces an
     in-process run bit for bit, engine faults answer ERR without
     killing the connection, protocol corruption closes only the guilty
     connection, a client hanging up mid-batch never corrupts others,
     and a non-reading client is shed at the configured threshold;
   - snapshot/restore over the wire: SNAPSHOT bytes from one server
     RESTOREd into a fresh server yield bit-identical STATS;
   - the text escape hatch: CRLF clients work (telnet/netcat), one
     client at a time with extras told "ERR busy" explicitly. *)

module Live = Rr_engine.Live
module Instance = Rr_workload.Instance
module Ring = Rr_serve.Ring
module Frame = Rr_serve.Frame
module Session = Rr_serve.Session
module Server = Rr_serve.Server
module Client = Rr_serve.Client

let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let sock_counter = ref 0

let temp_sock () =
  incr sock_counter;
  Printf.sprintf "/tmp/rr-serve-t%d-%d.sock" (Unix.getpid ()) !sock_counter

(* Spawn a server domain on a fresh socket, run [f path], then stop the
   server (best-effort, in case [f] already did) and join the domain. *)
let with_server ?config ~proto f =
  let path = temp_sock () in
  let engine = ref (Live.create Live.Equal_share) in
  let d = Domain.spawn (fun () -> Server.run ?config ~proto ~engine ~path ()) in
  Fun.protect
    ~finally:(fun () ->
      (match proto with
      | Server.Binary -> (
          try Client.shutdown (Client.connect ~retries:5 path) with _ -> ())
      | Server.Text -> (
          try
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_UNIX path);
            let oc = Unix.out_channel_of_descr fd in
            output_string oc "QUIT\n";
            flush oc;
            Unix.close fd
          with _ -> ()));
      Domain.join d)
    (fun () -> f path)

(* Raw (no-handshake) socket, for text mode and corruption tests;
   retries cover the race against a server still binding. *)
let connect_raw ?(retries = 100) path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec go n =
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) when n > 0 ->
        Unix.sleepf 0.02;
        go (n - 1)
  in
  go retries

let read_exactly fd n =
  let b = Bytes.create n in
  let rec go off =
    if off < n then
      let r = Unix.read fd b off (n - off) in
      if r = 0 then failwith "unexpected EOF" else go (off + r)
  in
  go 0;
  b

(* Read until EOF (or connection reset); returns the bytes seen. *)
let drain_to_eof fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> ()
    | r ->
        Buffer.add_subbytes buf chunk 0 r;
        go ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
  in
  go ();
  Buffer.contents buf

let bits = Int64.bits_of_float

let check_stats_equal name (a : Live.stats) (b : Live.stats) =
  let ci f x y = Alcotest.(check int) (name ^ " " ^ f) x y in
  let cf f x y = Alcotest.(check int64) (name ^ " " ^ f ^ " bits") (bits x) (bits y) in
  ci "submitted" a.submitted b.submitted;
  ci "completed" a.completed b.completed;
  ci "alive" a.alive b.alive;
  ci "pending" a.pending b.pending;
  ci "events" a.events b.events;
  ci "max_alive" a.max_alive b.max_alive;
  cf "now" a.now b.now;
  cf "makespan" a.makespan b.makespan;
  cf "mean_flow" a.mean_flow b.mean_flow;
  cf "max_flow" a.max_flow b.max_flow;
  cf "power_sum" a.power_sum b.power_sum;
  cf "norm" a.norm b.norm;
  cf "p50" a.p50 b.p50;
  cf "p90" a.p90 b.p90;
  cf "p99" a.p99 b.p99

(* n jobs off the replayable generator, as parallel arrays. *)
let workload ~seed ~n =
  let stream =
    Instance.Stream.generate_load ~seed
      ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
      ~load:0.9 ~machines:1 ~n ()
  in
  let next = Instance.Stream.start stream in
  let arrivals = Array.make n 0. and sizes = Array.make n 0. in
  for i = 0 to n - 1 do
    match next () with
    | Some (j : Rr_engine.Job.t) ->
        arrivals.(i) <- j.arrival;
        sizes.(i) <- j.size
    | None -> failwith "stream ended early"
  done;
  (arrivals, sizes)

(* ------------------------------------------------------------------ *)
(* Ring                                                                *)
(* ------------------------------------------------------------------ *)

(* Interleaved adds and consumes against a reference string, with chunk
   sizes chosen to force both compaction and growth past the tiny
   initial capacity. *)
let test_ring_fifo () =
  let r = Ring.create ~capacity:8 () in
  let rng = Random.State.make [| 42 |] in
  let expected = Buffer.create 1024 in
  let consumed = Buffer.create 1024 in
  for _ = 1 to 500 do
    let n = 1 + Random.State.int rng 50 in
    let s = String.init n (fun _ -> Char.chr (Random.State.int rng 256)) in
    Buffer.add_string expected s;
    Ring.add_string r s;
    let take = Random.State.int rng (Ring.length r + 1) in
    Buffer.add_subbytes consumed (Ring.buf r) (Ring.pos r) take;
    Ring.consume r take
  done;
  Buffer.add_subbytes consumed (Ring.buf r) (Ring.pos r) (Ring.length r);
  Ring.consume r (Ring.length r);
  Alcotest.(check bool) "drained" true (Ring.is_empty r);
  Alcotest.(check string) "FIFO order preserved" (Buffer.contents expected)
    (Buffer.contents consumed)

let test_ring_alloc_contiguity () =
  let r = Ring.create ~capacity:4 () in
  Ring.add_string r "abc";
  Ring.consume r 2;
  (* Forces compaction or growth; the readable region must stay one
     contiguous slice with the allocated tail right after it. *)
  let off = Ring.alloc r 5 in
  Bytes.blit_string "defgh" 0 (Ring.buf r) off 5;
  Alcotest.(check int) "length" 6 (Ring.length r);
  Alcotest.(check string) "contiguous readable slice" "cdefgh"
    (Bytes.sub_string (Ring.buf r) (Ring.pos r) (Ring.length r))

let test_ring_consume_guard () =
  let r = Ring.create () in
  Ring.add_string r "xy";
  Alcotest.check_raises "over-consume rejected"
    (Invalid_argument "Ring.consume: out of range") (fun () -> Ring.consume r 3)

(* ------------------------------------------------------------------ *)
(* Frame                                                               *)
(* ------------------------------------------------------------------ *)

let test_frame_header_roundtrip () =
  let r = Ring.create () in
  Frame.put_ok_id r ~first_id:123456789012 ~count:65536;
  let b = Ring.buf r and p = Ring.pos r in
  (match Frame.parse_header b p with
  | Ok (op, len) ->
      Alcotest.(check int) "opcode" Frame.op_ok_id op;
      Alcotest.(check int) "payload length" 12 len
  | Error e -> Alcotest.failf "header rejected: %s" e);
  Alcotest.(check int) "first id" 123456789012 (Frame.get_u64 b (p + Frame.header_size));
  Alcotest.(check int) "count" 65536 (Frame.get_u32 b (p + Frame.header_size + 8))

let test_frame_header_reserved () =
  let r = Ring.create () in
  Frame.put_empty r ~op:Frame.op_stats;
  let b = Ring.buf r and p = Ring.pos r in
  Bytes.set b (p + 2) '\x01';
  match Frame.parse_header b p with
  | Ok _ -> Alcotest.fail "nonzero reserved byte accepted"
  | Error _ -> ()

let test_frame_stats_bitexact () =
  let s : Live.stats =
    {
      submitted = 1_000_003;
      completed = 999_999;
      alive = 3;
      pending = 1;
      now = Float.pi *. 1e7;
      events = 2_000_000;
      makespan = 0x1.fffffffffffffp-3;
      max_alive = 4096;
      mean_flow = 1. /. 3.;
      max_flow = 1e308;
      power_sum = 2.2250738585072014e-308;
      norm = sqrt 2.;
      p50 = -0.0;
      p90 = 1.0000000000000002;
      p99 = 12345.6789;
    }
  in
  let r = Ring.create () in
  Frame.put_stats r s;
  Alcotest.(check int) "frame size" (Frame.header_size + Frame.stats_size) (Ring.length r);
  let decoded = Frame.stats_of_payload (Ring.buf r) (Ring.pos r + Frame.header_size) in
  check_stats_equal "stats wire roundtrip" s decoded

let test_frame_f64_bitexact () =
  let r = Ring.create () in
  List.iter
    (fun x -> Frame.put_advance r x)
    [ 0.; -0.; Float.min_float; Float.max_float; Float.pi; 1e-300; infinity ];
  let b = Ring.buf r and p = ref (Ring.pos r) in
  List.iter
    (fun x ->
      let got = Frame.get_f64 b (!p + Frame.header_size) in
      Alcotest.(check int64)
        (Printf.sprintf "f64 %h bits" x)
        (bits x) (bits got);
      p := !p + Frame.header_size + 8)
    [ 0.; -0.; Float.min_float; Float.max_float; Float.pi; 1e-300; infinity ]

(* ------------------------------------------------------------------ *)
(* Session: CRLF regression                                            *)
(* ------------------------------------------------------------------ *)

let test_session_crlf () =
  let engine = ref (Live.create Live.Equal_share) in
  (match Session.handle engine "SUBMIT 0 1\r" with
  | Session.Reply r -> Alcotest.(check string) "CR-terminated SUBMIT" "OK 0" r
  | _ -> Alcotest.fail "CR-terminated SUBMIT not answered");
  (match Session.handle engine "SUBMIT\t1\t2\r" with
  | Session.Reply r -> Alcotest.(check string) "tabs as separators" "OK 1" r
  | _ -> Alcotest.fail "tab-separated SUBMIT not answered");
  (match Session.handle engine "\r" with
  | Session.Silent -> ()
  | _ -> Alcotest.fail "bare CR line should be silent");
  match Session.handle engine "QUIT\r" with
  | Session.Quit -> ()
  | _ -> Alcotest.fail "CR-terminated QUIT not recognized"

(* ------------------------------------------------------------------ *)
(* Live.submit_batch                                                   *)
(* ------------------------------------------------------------------ *)

let test_submit_batch_differential () =
  let n = 2000 in
  let arrivals, sizes = workload ~seed:7 ~n in
  let one = Live.create ~k:3 Live.Equal_share in
  let batch = Live.create ~k:3 Live.Equal_share in
  let chunk = 97 in
  let i = ref 0 in
  while !i < n do
    let len = min chunk (n - !i) in
    for j = !i to !i + len - 1 do
      let id = Live.submit one ~arrival:arrivals.(j) ~size:sizes.(j) in
      Alcotest.(check int) "one-by-one id" j id
    done;
    let first = Live.submit_batch batch ~arrivals ~sizes ~off:!i ~len () in
    Alcotest.(check int) "batch first id" !i first;
    let h = arrivals.(!i + len - 1) in
    Live.advance one h;
    Live.advance batch h;
    i := !i + len
  done;
  Live.drain one;
  Live.drain batch;
  check_stats_equal "submit_batch vs repeated submit" (Live.query one) (Live.query batch)

let test_submit_batch_atomic () =
  let t = Live.create Live.Equal_share in
  ignore (Live.submit t ~arrival:0. ~size:1. : int);
  let before = Live.query t in
  (* Decreasing arrival in the middle of the slice: the whole batch must
     be rejected with nothing queued. *)
  let arrivals = [| 1.; 2.; 1.5; 3. |] and sizes = [| 1.; 1.; 1.; 1. |] in
  (match Live.submit_batch t ~arrivals ~sizes () with
  | _ -> Alcotest.fail "invalid batch accepted"
  | exception Invalid_argument _ -> ());
  check_stats_equal "engine untouched after rejected batch" before (Live.query t);
  (* Ids continue densely: the rejected batch consumed none. *)
  Alcotest.(check int) "next id unchanged" 1 (Live.submit t ~arrival:1. ~size:1.)

let test_submit_batch_slice () =
  let t = Live.create Live.Equal_share in
  let arrivals = [| 99.; 1.; 2.; 99. |] and sizes = [| 0.; 5.; 6.; 0. |] in
  let first = Live.submit_batch t ~arrivals ~sizes ~off:1 ~len:2 () in
  Alcotest.(check int) "slice first id" 0 first;
  Alcotest.(check int) "slice submitted" 2 (Live.query t).Live.submitted;
  Alcotest.(check int) "empty batch returns next id"
    2
    (Live.submit_batch t ~arrivals ~sizes ~off:0 ~len:0 ());
  Alcotest.check_raises "bad slice"
    (Invalid_argument "Live.submit_batch: off/len out of bounds") (fun () ->
      ignore (Live.submit_batch t ~arrivals ~sizes ~off:3 ~len:2 () : int))

(* ------------------------------------------------------------------ *)
(* Binary server end-to-end                                            *)
(* ------------------------------------------------------------------ *)

(* The tentpole acceptance: a socket-fed run and an in-process run of
   the same feed produce bit-identical STATS. *)
let test_binary_matches_inprocess () =
  with_server ~proto:Server.Binary (fun path ->
      let n = 1500 in
      let arrivals, sizes = workload ~seed:11 ~n in
      let c = Client.connect path in
      let local = Live.create Live.Equal_share in
      let chunk = 256 in
      let i = ref 0 in
      while !i < n do
        let len = min chunk (n - !i) in
        let first_wire = Client.submit_batch c ~arrivals ~sizes ~off:!i ~len () in
        let first_local = Live.submit_batch local ~arrivals ~sizes ~off:!i ~len () in
        Alcotest.(check int) "ids agree" first_local first_wire;
        let h = arrivals.(!i + len - 1) in
        ignore (Client.advance c h : float * int * int);
        Live.advance local h;
        i := !i + len
      done;
      ignore (Client.drain c : float * int * int);
      Live.drain local;
      check_stats_equal "socket-fed vs in-process" (Live.query local) (Client.stats c);
      Client.shutdown c)

let test_binary_err_keeps_connection () =
  with_server ~proto:Server.Binary (fun path ->
      let c = Client.connect path in
      Alcotest.(check int) "first submit" 0 (Client.submit c ~arrival:5. ~size:1.);
      (* Engine fault: decreasing arrival answers ERR, connection lives. *)
      (match Client.submit c ~arrival:3. ~size:1. with
      | _ -> Alcotest.fail "decreasing arrival accepted"
      | exception Client.Server_error _ -> ());
      Alcotest.(check int) "connection still usable" 1 (Client.submit c ~arrival:6. ~size:1.);
      let s = Client.stats c in
      Alcotest.(check int) "only valid submits counted" 2 s.Live.submitted;
      Client.shutdown c)

let test_binary_snapshot_restore_across_servers () =
  with_server ~proto:Server.Binary (fun path1 ->
      with_server ~proto:Server.Binary (fun path2 ->
          let c1 = Client.connect path1 in
          let arrivals, sizes = workload ~seed:13 ~n:400 in
          ignore (Client.submit_batch c1 ~arrivals ~sizes () : int);
          ignore (Client.advance c1 arrivals.(199) : float * int * int);
          let snap = Client.snapshot c1 in
          let c2 = Client.connect path2 in
          Client.restore c2 snap;
          check_stats_equal "restored server matches source" (Client.stats c1)
            (Client.stats c2);
          (* Both continue independently to the same final state. *)
          ignore (Client.drain c1 : float * int * int);
          ignore (Client.drain c2 : float * int * int);
          check_stats_equal "drained restored server matches" (Client.stats c1)
            (Client.stats c2);
          Client.shutdown c2;
          Client.shutdown c1))

let test_binary_midbatch_disconnect () =
  with_server ~proto:Server.Binary (fun path ->
      let victim = Client.connect path in
      let survivor = Client.connect path in
      Alcotest.(check int) "survivor submits" 0 (Client.submit survivor ~arrival:0. ~size:1.);
      (* The victim announces a 1000-job BATCH but hangs up 12 bytes in:
         the server must discard the partial frame without touching the
         engine or the survivor's session. *)
      let partial = Bytes.create (Frame.header_size + 12) in
      Bytes.set partial 0 (Char.chr Frame.op_batch);
      Bytes.set partial 1 '\x00';
      Bytes.set partial 2 '\x00';
      Bytes.set partial 3 '\x00';
      Bytes.set_int32_le partial 4 (Int32.of_int (4 + (1000 * 16)));
      Bytes.set_int32_le partial Frame.header_size 1000l;
      Client.send_raw victim partial;
      Client.close victim;
      (* The survivor keeps a working session on an uncorrupted engine. *)
      Alcotest.(check int) "survivor still works" 1
        (Client.submit survivor ~arrival:1. ~size:1.);
      let s = Client.stats survivor in
      Alcotest.(check int) "no phantom jobs from the dead batch" 2 s.Live.submitted;
      ignore (Client.drain survivor : float * int * int);
      Alcotest.(check int) "both jobs complete" 2 (Client.stats survivor).Live.completed;
      Client.shutdown survivor)

let test_binary_bad_hello_closed () =
  with_server ~proto:Server.Binary (fun path ->
      let fd = connect_raw path in
      let garbage = Bytes.of_string "XXXXXXXX" in
      ignore (Unix.write fd garbage 0 8 : int);
      (* The server answers one ERR frame and closes. *)
      let seen = drain_to_eof fd in
      Alcotest.(check bool) "got an ERR frame" true (String.length seen >= Frame.header_size);
      Alcotest.(check int) "ERR opcode" Frame.op_err (Char.code seen.[0]);
      Unix.close fd;
      (* The daemon itself is unharmed. *)
      let c = Client.connect path in
      Alcotest.(check int) "server still serving" 0 (Client.submit c ~arrival:0. ~size:1.);
      Client.shutdown c)

let test_binary_shed_nonreading_client () =
  let config = { Server.default_config with max_pending = 64 } in
  with_server ~config ~proto:Server.Binary (fun path ->
      let fd = connect_raw path in
      ignore (Unix.write fd (Bytes.of_string Frame.hello) 0 Frame.hello_len : int);
      ignore (read_exactly fd Frame.hello_len : bytes);
      (* 1000 STATS requests in one burst without reading a single
         reply: 128 KB of pending replies blows the 64-byte threshold
         and the connection is shed. *)
      let burst = Bytes.create (1000 * Frame.header_size) in
      for i = 0 to 999 do
        Bytes.fill burst (i * Frame.header_size) Frame.header_size '\x00';
        Bytes.set burst (i * Frame.header_size) (Char.chr Frame.op_stats);
        Bytes.set_int32_le burst ((i * Frame.header_size) + 4) 0l
      done;
      ignore (Unix.write fd burst 0 (Bytes.length burst) : int);
      ignore (drain_to_eof fd : string);
      Unix.close fd;
      (* Shedding one hog leaves the daemon serving. *)
      let c = Client.connect path in
      Alcotest.(check int) "server alive after shed" 0 (Client.submit c ~arrival:0. ~size:1.);
      Client.shutdown c)

(* ------------------------------------------------------------------ *)
(* Text over the socket                                                *)
(* ------------------------------------------------------------------ *)

let test_text_crlf_over_socket () =
  with_server ~proto:Server.Text (fun path ->
      let fd = connect_raw path in
      let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
      output_string oc "SUBMIT 0 1\r\nSTATS\r\n";
      flush oc;
      Alcotest.(check (option string)) "CRLF SUBMIT answered" (Some "OK 0")
        (In_channel.input_line ic);
      (match In_channel.input_line ic with
      | Some line ->
          Alcotest.(check bool) "CRLF STATS answered" true
            (String.length line >= 2 && String.sub line 0 2 = "OK")
      | None -> Alcotest.fail "no STATS reply");
      output_string oc "QUIT\r\n";
      flush oc;
      Alcotest.(check (option string)) "CRLF QUIT answered" (Some "OK bye")
        (In_channel.input_line ic);
      Unix.close fd)

let test_text_err_busy () =
  with_server ~proto:Server.Text (fun path ->
      let fd1 = connect_raw path in
      let ic1 = Unix.in_channel_of_descr fd1 and oc1 = Unix.out_channel_of_descr fd1 in
      output_string oc1 "SUBMIT 0 1\n";
      flush oc1;
      Alcotest.(check (option string)) "first client served" (Some "OK 0")
        (In_channel.input_line ic1);
      (* A second text client is told why it is turned away. *)
      let fd2 = connect_raw path in
      let seen = drain_to_eof fd2 in
      Alcotest.(check string) "second client refused explicitly" "ERR busy\n" seen;
      Unix.close fd2;
      (* The first session is undisturbed, and once it leaves the seat
         frees up for the next client. *)
      output_string oc1 "STATS\n";
      flush oc1;
      (match In_channel.input_line ic1 with
      | Some line -> Alcotest.(check bool) "first client undisturbed" true
            (String.length line >= 2 && String.sub line 0 2 = "OK")
      | None -> Alcotest.fail "first client lost its session");
      Unix.close fd1;
      Unix.sleepf 0.05;
      let fd3 = connect_raw path in
      let ic3 = Unix.in_channel_of_descr fd3 and oc3 = Unix.out_channel_of_descr fd3 in
      output_string oc3 "STATS\n";
      flush oc3;
      (match In_channel.input_line ic3 with
      | Some line ->
          Alcotest.(check bool) "seat freed for the next client" true
            (String.length line >= 2 && String.sub line 0 2 = "OK")
      | None -> Alcotest.fail "next client not served");
      output_string oc3 "QUIT\n";
      flush oc3;
      ignore (In_channel.input_line ic3 : string option);
      Unix.close fd3)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "serve"
    [
      ( "ring",
        [
          Alcotest.test_case "fifo across compaction and growth" `Quick test_ring_fifo;
          Alcotest.test_case "alloc keeps readable slice contiguous" `Quick
            test_ring_alloc_contiguity;
          Alcotest.test_case "over-consume rejected" `Quick test_ring_consume_guard;
        ] );
      ( "frame",
        [
          Alcotest.test_case "header roundtrip" `Quick test_frame_header_roundtrip;
          Alcotest.test_case "nonzero reserved byte rejected" `Quick
            test_frame_header_reserved;
          Alcotest.test_case "stats payload bit-exact" `Quick test_frame_stats_bitexact;
          Alcotest.test_case "f64 fields bit-exact" `Quick test_frame_f64_bitexact;
        ] );
      ( "session",
        [ Alcotest.test_case "CRLF and tabs accepted" `Quick test_session_crlf ] );
      ( "submit_batch",
        [
          Alcotest.test_case "bit-identical to repeated submit" `Quick
            test_submit_batch_differential;
          Alcotest.test_case "rejected batch leaves engine untouched" `Quick
            test_submit_batch_atomic;
          Alcotest.test_case "slices and empty batches" `Quick test_submit_batch_slice;
        ] );
      ( "binary server",
        [
          Alcotest.test_case "socket-fed run matches in-process bit-for-bit" `Quick
            test_binary_matches_inprocess;
          Alcotest.test_case "engine fault answers ERR, connection lives" `Quick
            test_binary_err_keeps_connection;
          Alcotest.test_case "snapshot/restore across servers" `Quick
            test_binary_snapshot_restore_across_servers;
          Alcotest.test_case "mid-batch disconnect leaves others intact" `Quick
            test_binary_midbatch_disconnect;
          Alcotest.test_case "bad hello closes only that connection" `Quick
            test_binary_bad_hello_closed;
          Alcotest.test_case "non-reading client is shed" `Quick
            test_binary_shed_nonreading_client;
        ] );
      ( "text server",
        [
          Alcotest.test_case "CRLF clients (telnet/netcat) work" `Quick
            test_text_crlf_over_socket;
          Alcotest.test_case "second client answered ERR busy" `Quick test_text_err_busy;
        ] );
    ]
