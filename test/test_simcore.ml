(* Tests for the fast simulation core: the specialised engines (the
   equal-share cascade, the priority indexes, the SETF cascade, the
   dense class kernels, the hybrid and budget kernels — each
   differential against the general event loop over every registry
   policy), the class-based Run dispatch that selects them, and the
   memoizing result cache. *)

open Temporal_fairness
module Simulator = Rr_engine.Simulator
module Instance = Rr_workload.Instance
module Registry = Rr_policies.Registry

let rr = Rr_policies.Round_robin.policy

(* Every registry policy (all are classified), with its expected engine
   tag.  Policies are built fresh per simulation — quantum-rr's closure
   owns the ready queue of one run. *)
let fast_policies =
  [
    (Registry.Rr, "equal-share");
    (Registry.Srpt, "srpt-index");
    (Registry.Sjf, "sjf-index");
    (Registry.Fcfs, "fcfs-index");
    (Registry.Setf, "setf-cascade");
    (Registry.Hdf 2., "hdf-index");
    (Registry.Laps 0.5, "laps-dense");
    (Registry.Mlfq 0.5, "mlfq-ladder");
    (Registry.Quantum_rr 1., "quantum-cycle");
    (Registry.Wrr_age 2, "wrr-age-dense");
    (Registry.Wrr_static 1., "wrr-static-dense");
    (Registry.Hybrid 3., "hybrid-index");
    (Registry.Srpt_mig 1, "srpt-mig-index");
  ]

(* The engines compute the same trajectory in different arithmetic orders,
   so flows agree only up to accumulated rounding. *)
let flow_rtol = 1e-9

let rel_diff a b = Float.abs (a -. b) /. Float.max 1e-12 (Float.max (Float.abs a) (Float.abs b))

let instance_of_pairs pairs = Instance.of_jobs pairs

(* ------------------------------------------------------------------ *)
(* Differential: equal-share engine vs general event loop              *)
(* ------------------------------------------------------------------ *)

let diff_gen =
  QCheck2.Gen.(
    let pairs = list_size (int_range 1 40) (pair (float_range 0. 30.) (float_range 0.05 5.)) in
    let machines = oneofl [ 1; 2; 8 ] in
    let speed = oneofl [ 1.; 1.5; 4.4 ] in
    triple pairs machines speed)

let prop_equal_share_matches_general =
  QCheck2.Test.make ~name:"equal-share engine matches general RR (flows)" ~count:250 diff_gen
    (fun (pairs, machines, speed) ->
      let jobs = Instance.jobs (instance_of_pairs pairs) in
      let general = Simulator.run ~machines ~speed ~policy:rr jobs in
      let fast = Simulator.run_equal_share ~machines ~speed jobs in
      let fg = Simulator.flows general and ff = Simulator.flows fast in
      Array.length fg = Array.length ff
      && Array.for_all2 (fun a b -> rel_diff a b <= flow_rtol) fg ff)

let prop_run_dispatch_matches_general =
  (* Same property one layer up: Run.simulate under `Auto vs forced
     `General, exercising the dispatch itself. *)
  QCheck2.Test.make ~name:"Run.simulate fast path matches general RR" ~count:100 diff_gen
    (fun (pairs, machines, speed) ->
      let inst = instance_of_pairs pairs in
      let on = Run.simulate (Run.config ~machines ~speed ()) rr inst in
      let off = Run.simulate (Run.config ~machines ~speed ~engine:`General ()) rr inst in
      Array.for_all2
        (fun a b -> rel_diff a b <= flow_rtol)
        (Simulator.flows on) (Simulator.flows off))

(* An unclassified structural copy of SRPT: the dispatch keys on the
   declared class, never on name or structure, so this value runs the
   general loop under every engine-agnostic selection. *)
let impostor_srpt () =
  {
    Rr_engine.Policy.name = "srpt";
    clairvoyant = true;
    klass = None;
    allocate =
      (fun ~now:_ ~machines ~speed:_ views ->
        Rr_policies.Srpt.top_m_by Rr_policies.Srpt.key ~machines views);
  }

let prop_fast_path_inert_for_unclassified =
  QCheck2.Test.make ~name:"unclassified policy is engine-invariant (general both ways)"
    ~count:50 diff_gen
    (fun (pairs, machines, speed) ->
      let inst = instance_of_pairs pairs in
      let on = Run.simulate (Run.config ~machines ~speed ()) (impostor_srpt ()) inst in
      let off =
        Run.simulate (Run.config ~machines ~speed ~engine:`General ()) (impostor_srpt ()) inst
      in
      Simulator.flows on = Simulator.flows off)

(* One differential property per specialised engine: Run.simulate under
   `Auto vs forced `General must agree on every flow to flow_rtol,
   across m in {1, 2, 8} and several speeds. *)
let prop_engine_matches_general (spec, engine) =
  QCheck2.Test.make
    ~name:
      (Printf.sprintf "%s engine matches general %s (flows)" engine
        (Registry.make spec).Rr_engine.Policy.name)
    ~count:250 diff_gen
    (fun (pairs, machines, speed) ->
      let inst = instance_of_pairs pairs in
      let fast = Run.simulate (Run.config ~machines ~speed ()) (Registry.make spec) inst in
      let general =
        Run.simulate (Run.config ~machines ~speed ~engine:`General ()) (Registry.make spec) inst
      in
      let ff = Simulator.flows fast and fg = Simulator.flows general in
      Array.length ff = Array.length fg
      && Array.for_all2 (fun a b -> rel_diff a b <= flow_rtol) ff fg)

let engine_props = List.map prop_engine_matches_general fast_policies

(* ------------------------------------------------------------------ *)
(* Differential edge-case corpus, every (fast engine, general) pair    *)
(* ------------------------------------------------------------------ *)

(* Deterministic instances aimed at the engines' decision boundaries:
   simultaneous arrivals, exact size/remaining-work ties, arrivals landing
   exactly on completions, preemption chains, more machines than jobs,
   single-job and empty instances. *)
let edge_corpus =
  [
    ("empty", []);
    ("single job", [ (0., 1.) ]);
    ("simultaneous arrivals, tied sizes", [ (0., 2.); (0., 2.); (0., 1.); (0., 1.); (0., 3.); (0., 2.) ]);
    ("all identical", [ (0., 1.); (0., 1.); (0., 1.); (0., 1.); (0., 1.) ]);
    ("arrival exactly at completion", [ (0., 1.); (1., 1.); (2., 1.) ]);
    ("remaining-work tie at arrival", [ (0., 2.); (1., 1.) ]);
    ("preemption chain", [ (0., 10.); (1., 4.); (2., 2.); (3., 1.) ]);
    ("batch then stragglers", [ (0., 3.); (0., 3.); (0., 3.); (4., 0.5); (4., 0.5); (9., 1.) ]);
    (* A long job starved by a stream of shorts: under the hybrid's
       default theta = 3 the size-2 job promotes at t = 6, mid-stream;
       for SRPT-mig it burns its eviction budget early. *)
    ( "starvation stream",
      [ (0., 2.); (0.5, 1.); (1., 1.); (1.5, 1.); (2., 1.); (3., 1.); (4.5, 1.); (6., 0.5) ] );
    (* Promotion/eviction decisions landing exactly on completions. *)
    ("tie at promotion instant", [ (0., 1.); (0., 2.); (3., 1.); (6., 1.) ]);
  ]

let test_edge_corpus () =
  List.iter
    (fun (spec, engine) ->
      List.iter
        (fun (label, pairs) ->
          let inst = instance_of_pairs pairs in
          List.iter
            (fun machines ->
              let fast = Run.simulate (Run.config ~machines ()) (Registry.make spec) inst in
              let general =
                Run.simulate (Run.config ~machines ~engine:`General ()) (Registry.make spec)
                  inst
              in
              let ff = Simulator.flows fast and fg = Simulator.flows general in
              if Array.length ff <> Array.length fg then
                Alcotest.failf "%s / %s / m=%d: job counts differ" engine label machines;
              Array.iteri
                (fun i a ->
                  if rel_diff a fg.(i) > flow_rtol then
                    Alcotest.failf "%s / %s / m=%d: flow %d differs (%.17g vs %.17g)" engine
                      label machines i a fg.(i))
                ff)
            [ 1; 2; 8 ])
        edge_corpus)
    fast_policies

(* ------------------------------------------------------------------ *)
(* Engine classifier                                                   *)
(* ------------------------------------------------------------------ *)

let test_engine_classifier () =
  let cfg = Run.config () in
  List.iter
    (fun (spec, engine) ->
      let policy = Registry.make spec in
      Alcotest.(check string)
        (policy.Rr_engine.Policy.name ^ " classifies")
        engine (Run.engine_name cfg policy);
      Alcotest.(check string)
        (policy.Rr_engine.Policy.name ^ " with fast path off")
        "general"
        (Run.engine_name (Run.config ~engine:`General ()) policy))
    fast_policies;
  (* The class declaration is load-bearing: a structurally identical copy
     of srpt without one must NOT be fast-pathed (its allocate could
     differ from the declaration's contract). *)
  Alcotest.(check string)
    "impostor srpt stays general" "general"
    (Run.engine_name cfg (impostor_srpt ()));
  (* Every registry policy is classified: `Auto never falls back to the
     general loop on a built-in. *)
  List.iter
    (fun spec ->
      let policy = Registry.make spec in
      (match Run.selection_for cfg policy with
      | Run.General ->
          Alcotest.failf "%s not classified under `Auto" policy.Rr_engine.Policy.name
      | _ -> ());
      (* ... and each one also runs under the insisting selectors. *)
      let insist = if spec = Registry.Rr then `Equal_share else `Indexed in
      let (_ : Run.selection) = Run.selection_for (Run.config ~engine:insist ()) policy in
      ())
    (Registry.default_specs ())

let test_fast_engine_traces () =
  (* Each fast engine's optional trace must describe the same schedule as
     the general loop's: same total work, same time-weighted Jain index. *)
  let inst =
    Instance.generate_load
      ~rng:(Rr_util.Prng.create ~seed:13)
      ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
      ~load:0.9 ~machines:1 ~n:60 ()
  in
  List.iter
    (fun (spec, engine) ->
      let fast = Run.simulate (Run.config ~record_trace:true ()) (Registry.make spec) inst in
      let general =
        Run.simulate
          (Run.config ~record_trace:true ~engine:`General ())
          (Registry.make spec) inst
      in
      let work trace = Rr_engine.Trace.total_work ~speed:1. trace in
      let close what a b =
        if rel_diff a b > 1e-6 then Alcotest.failf "%s: %s differ: %g vs %g" engine what a b
      in
      close "trace work" (work fast.Simulator.trace) (work general.Simulator.trace);
      close "jain index"
        (Rr_metrics.Fairness.time_weighted_jain fast.Simulator.trace)
        (Rr_metrics.Fairness.time_weighted_jain general.Simulator.trace))
    fast_policies

let test_equal_share_trace () =
  (* The fast engine's optional trace must describe the same schedule: same
     time-weighted Jain index, same total work. *)
  let inst =
    Instance.generate_load
      ~rng:(Rr_util.Prng.create ~seed:7)
      ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
      ~load:0.9 ~machines:1 ~n:60 ()
  in
  let jobs = Instance.jobs inst in
  let general = Simulator.run ~record_trace:true ~machines:1 ~policy:rr jobs in
  let fast = Simulator.run_equal_share ~record_trace:true ~machines:1 jobs in
  let work trace = Rr_engine.Trace.total_work ~speed:1. trace in
  let close what a b =
    if rel_diff a b > 1e-6 then Alcotest.failf "%s differ: %g vs %g" what a b
  in
  close "trace work" (work general.trace) (work fast.trace);
  close "jain index"
    (Rr_metrics.Fairness.time_weighted_jain general.trace)
    (Rr_metrics.Fairness.time_weighted_jain fast.trace)

(* ------------------------------------------------------------------ *)
(* Instance digest                                                     *)
(* ------------------------------------------------------------------ *)

let test_digest () =
  let pairs = [ (0., 1.); (0.5, 2.); (1., 0.25) ] in
  let a = Instance.of_jobs ~label:"a" pairs in
  let b = Instance.of_jobs ~label:"b" pairs in
  Alcotest.(check bool) "label-independent" true (Int64.equal (Instance.digest a) (Instance.digest b));
  let c = Instance.of_jobs ~label:"a" [ (0., 1.); (0.5, 2.); (1., 0.250001) ] in
  Alcotest.(check bool) "size-sensitive" false (Int64.equal (Instance.digest a) (Instance.digest c));
  let d = Instance.of_jobs [ (0., 1.); (0.5, 2.) ] in
  Alcotest.(check bool) "count-sensitive" false (Int64.equal (Instance.digest a) (Instance.digest d))

(* ------------------------------------------------------------------ *)
(* Result cache                                                        *)
(* ------------------------------------------------------------------ *)

let small_inst =
  Instance.generate_load
    ~rng:(Rr_util.Prng.create ~seed:11)
    ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
    ~load:0.8 ~machines:1 ~n:30 ()

let test_cache_hit_miss () =
  Cache.clear ();
  let cfg = Run.config () in
  let r1 = Run.measure cfg rr small_inst in
  let s1 = Cache.stats () in
  Alcotest.(check int) "first is a miss" 1 s1.misses;
  Alcotest.(check int) "no hit yet" 0 s1.hits;
  let r2 = Run.measure cfg rr small_inst in
  let s2 = Cache.stats () in
  Alcotest.(check int) "second is a hit" 1 s2.hits;
  Alcotest.(check int) "still one miss" 1 s2.misses;
  Alcotest.(check int) "one entry" 1 s2.size;
  Alcotest.(check bool) "bit-identical result" true (r1 = r2);
  Alcotest.(check bool) "same norm" true
    (Int64.equal (Int64.bits_of_float r1.Run.norm) (Int64.bits_of_float r2.Run.norm))

let test_cache_config_sensitivity () =
  (* Every field that changes the measurement must miss, and the result
     must come from a fresh simulation, never a stale entry. *)
  Cache.clear ();
  let base = Run.config () in
  let r_base = Run.measure base rr small_inst in
  let r_k3 = Run.measure (Run.config ~k:3 ()) rr small_inst in
  let r_speed = Run.measure (Run.config ~speed:2. ()) rr small_inst in
  let r_slow = Run.measure (Run.config ~engine:`General ()) rr small_inst in
  let s = Cache.stats () in
  Alcotest.(check int) "four distinct keys" 4 s.misses;
  Alcotest.(check int) "no spurious hits" 0 s.hits;
  Alcotest.(check bool) "k changes power sum" true (r_k3.Run.power_sum <> r_base.Run.power_sum);
  Alcotest.(check bool) "speed changes norm" true (r_speed.Run.norm < r_base.Run.norm);
  (* fast and general RR agree to rounding but live under different keys *)
  Alcotest.(check bool) "engines agree" true
    (rel_diff r_slow.Run.norm r_base.Run.norm <= flow_rtol);
  (* record_trace is normalised out of the key: a traced config hits *)
  let (_ : Run.result) = Run.measure (Run.config ~record_trace:true ()) rr small_inst in
  Alcotest.(check int) "trace flag shares the entry" 1 (Cache.stats ()).hits

let test_cache_disabled () =
  Cache.clear ();
  let cfg = Run.config ~cache:false () in
  let r1 = Run.measure cfg rr small_inst in
  let r2 = Run.measure cfg rr small_inst in
  let s = Cache.stats () in
  Alcotest.(check int) "no misses recorded" 0 s.misses;
  Alcotest.(check int) "no hits recorded" 0 s.hits;
  Alcotest.(check int) "nothing stored" 0 s.size;
  Alcotest.(check bool) "still deterministic" true (r1 = r2)

let test_flows_uncached () =
  (* Run.flows always re-simulates (entries hold O(1) aggregates, never
     a flow vector) and hands out a fresh array every call. *)
  Cache.clear ();
  let cfg = Run.config () in
  let f1 = Run.flows cfg rr small_inst in
  Array.fill f1 0 (Array.length f1) Float.nan;
  let f2 = Run.flows cfg rr small_inst in
  Alcotest.(check bool) "fresh array each call" true (Array.for_all Float.is_finite f2);
  let s = Cache.stats () in
  Alcotest.(check int) "flows bypass the cache" 0 (s.misses + s.hits + s.size)

let test_cache_capacity () =
  Cache.clear ();
  Fun.protect
    ~finally:(fun () -> Cache.set_capacity Cache.default_capacity)
    (fun () ->
      Cache.set_capacity 0;
      let (_ : Run.result) = Run.measure (Run.config ()) rr small_inst in
      Alcotest.(check int) "insert refused at capacity" 0 (Cache.stats ()).size;
      let (_ : Run.result) = Run.measure (Run.config ()) rr small_inst in
      Alcotest.(check int) "recompute counts as a miss" 2 (Cache.stats ()).misses)

let test_cache_under_pool () =
  (* Many domains hammering the same few keys: results must equal the
     sequential ones and the cache must end up consistent. *)
  Cache.clear ();
  let cfg = Run.config () in
  let policies = [ rr; Rr_policies.Srpt.policy; Rr_policies.Fcfs.policy ] in
  let tasks = List.concat (List.init 20 (fun _ -> List.map (fun p -> (p, small_inst)) policies)) in
  let seq = List.map (fun (p, i) -> Run.measure (Run.config ~cache:false ()) p i) tasks in
  let par = Pool.with_pool ~domains:4 (fun pool -> Run.batch pool cfg tasks) in
  List.iter2
    (fun (a : Run.result) (b : Run.result) ->
      Alcotest.(check bool) "parallel cached = sequential uncached" true
        (a.norm = b.norm && a.mean_flow = b.mean_flow && a.max_flow = b.max_flow
        && a.events = b.events))
    seq par;
  let s = Cache.stats () in
  Alcotest.(check int) "three keys" 3 s.size;
  (* Racing domains may duplicate a computation, but hits + misses always
     add up to one count per lookup. *)
  Alcotest.(check int) "every lookup counted" (List.length tasks) (s.hits + s.misses)

(* ------------------------------------------------------------------ *)
(* Sweep probe memo                                                    *)
(* ------------------------------------------------------------------ *)

let test_sweep_probe_memo () =
  let calls = ref 0 in
  let f s =
    incr calls;
    10. /. s
  in
  let iters = 16 in
  (match Sweep.min_speed_for ~f ~threshold:2.5 ~lo:1. ~hi:8. ~iters () with
  | Ok s -> Alcotest.(check bool) "crossover near 4" true (Float.abs (s -. 4.) < 0.01)
  | Error _ -> Alcotest.fail "expected a crossover");
  Alcotest.(check bool)
    (Printf.sprintf "at most iters+1 evaluations (got %d)" !calls)
    true
    (!calls <= iters + 1)

let test_run_config_new_defaults () =
  Alcotest.(check bool) "auto engine by default" true (Run.default.Run.engine = `Auto);
  Alcotest.(check bool) "cache on by default" true Run.default.Run.cache;
  let cfg = Run.config ~engine:`General ~cache:false () in
  Alcotest.(check bool) "explicit engine respected" true (cfg.Run.engine = `General);
  Alcotest.(check bool) "cache off" false cfg.Run.cache;
  (* The string round-trip backing the CLI's --engine option. *)
  List.iter
    (fun s ->
      match Run.engine_of_string s with
      | Some e -> Alcotest.(check string) ("engine round-trip " ^ s) s (Run.engine_to_string e)
      | None -> Alcotest.fail ("engine_of_string rejected " ^ s))
    Run.engine_strings;
  Alcotest.(check bool) "unknown engine string rejected" true
    (Run.engine_of_string "bogus" = None)

let test_cache_engine_keys () =
  (* Fast and general runs of the same policy must land under distinct
     cache keys now that non-RR policies also dispatch (before PR 5 both
     srpt configs shared one key — both ran the general loop). *)
  Cache.clear ();
  let srpt = Rr_policies.Srpt.policy in
  let r_fast = Run.measure (Run.config ()) srpt small_inst in
  let r_gen = Run.measure (Run.config ~engine:`General ()) srpt small_inst in
  let s = Cache.stats () in
  Alcotest.(check int) "two distinct keys" 2 s.misses;
  Alcotest.(check int) "no aliasing hit" 0 s.hits;
  Alcotest.(check bool) "engines agree" true (rel_diff r_fast.Run.norm r_gen.Run.norm <= flow_rtol)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    ([
       prop_equal_share_matches_general;
       prop_run_dispatch_matches_general;
       prop_fast_path_inert_for_unclassified;
     ]
    @ engine_props)

let () =
  Alcotest.run "rr_simcore"
    [
      ( "differential",
        qsuite
        @ [
            Alcotest.test_case "trace equivalence" `Quick test_equal_share_trace;
            Alcotest.test_case "edge corpus, every engine" `Quick test_edge_corpus;
            Alcotest.test_case "fast engine traces" `Quick test_fast_engine_traces;
          ] );
      ( "engine",
        [
          Alcotest.test_case "classifier" `Quick test_engine_classifier;
          Alcotest.test_case "cache keys per engine" `Quick test_cache_engine_keys;
        ] );
      ("digest", [ Alcotest.test_case "structural" `Quick test_digest ]);
      ( "cache",
        [
          Alcotest.test_case "hit/miss accounting" `Quick test_cache_hit_miss;
          Alcotest.test_case "config sensitivity" `Quick test_cache_config_sensitivity;
          Alcotest.test_case "disabled" `Quick test_cache_disabled;
          Alcotest.test_case "flows uncached" `Quick test_flows_uncached;
          Alcotest.test_case "capacity" `Quick test_cache_capacity;
          Alcotest.test_case "under pool" `Quick test_cache_under_pool;
        ] );
      ( "config",
        [
          Alcotest.test_case "sweep probe memo" `Quick test_sweep_probe_memo;
          Alcotest.test_case "defaults" `Quick test_run_config_new_defaults;
        ] );
    ]
