(* Tests for the incremental live engine (Rr_engine.Live) and the
   engine-selection surface that exposes it (Run.engine / selection_for).

   The load-bearing properties:

   - differential: a submit-everything-upfront live run reproduces
     Run.simulate's flows to <= 1e-9 relative for every spec and machine
     count (on such feeds the event sequences are identical, so in
     practice the agreement is bit-exact);
   - interleaved: submitting while advancing — including horizons that
     split inter-event intervals — changes nothing beyond rounding;
   - snapshot/restore: a restored engine continues bit-identically;
   - selection: [`Live] names, dispatches and caches distinctly from the
     closed engines, and impossible engine/policy pairings fail loudly. *)

open Temporal_fairness
module Live = Rr_engine.Live
module Instance = Rr_workload.Instance

let flow_rtol = 1e-9

let rel_diff a b = Float.abs (a -. b) /. Float.max 1e-12 (Float.max (Float.abs a) (Float.abs b))

(* Every live spec with the shared policy value it mirrors.  The last
   four exercise the [Classified] cores added with the class layer; all
   nine policies here have stateless allocate closures, so sharing one
   value across runs is safe (quantum-rr, which is not, stays out). *)
let live_specs =
  [
    (Live.Equal_share, Rr_policies.Round_robin.policy);
    (Live.Indexed Rr_engine.Index_engine.Srpt, Rr_policies.Srpt.policy);
    (Live.Indexed Rr_engine.Index_engine.Sjf, Rr_policies.Sjf.policy);
    (Live.Indexed Rr_engine.Index_engine.Fcfs, Rr_policies.Fcfs.policy);
    (Live.Setf_cascade, Rr_policies.Setf.policy);
  ]
  @ List.map
      (fun spec ->
        let policy = Rr_policies.Registry.make spec in
        (Live.Classified (Option.get policy.Rr_engine.Policy.klass), policy))
      Rr_policies.Registry.
        [ Laps 0.5; Mlfq 0.5; Wrr_age 2; Hybrid 3. ]

let poisson_instance ~seed ~machines ~n =
  let rng = Rr_util.Prng.create ~seed in
  Instance.generate_load ~rng
    ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
    ~load:0.9 ~machines ~n ()

(* Feed an instance's jobs (already arrival-sorted with dense ids) into a
   live engine, collecting per-job flows through the sink. *)
let live_flows ?(interleave = fun _ _ -> ()) ~machines ~speed ~k spec inst =
  let n = Instance.n inst in
  let flows = Array.make n nan in
  let sink ~id ~arrival:_ ~flow = flows.(id) <- flow in
  let live = Live.create ~machines ~speed ~k ~sink spec in
  List.iter
    (fun (j : Rr_engine.Job.t) ->
      interleave live j;
      let id = Live.submit live ~arrival:j.arrival ~size:j.size in
      Alcotest.(check int) "dense ids follow instance ids" j.id id)
    (Instance.jobs inst);
  Live.drain live;
  (flows, Live.query live)

(* ------------------------------------------------------------------ *)
(* Differential: upfront live feed vs Run.simulate, all specs x m      *)
(* ------------------------------------------------------------------ *)

let test_upfront_matches_run () =
  List.iter
    (fun (spec, policy) ->
      List.iter
        (fun machines ->
          let inst = poisson_instance ~seed:(41 + machines) ~machines ~n:300 in
          let speed = 1.3 and k = 2 in
          let reference =
            Run.flows (Run.config ~machines ~speed ~k ~cache:false ()) policy inst
          in
          let flows, stats = live_flows ~machines ~speed ~k spec inst in
          Array.iteri
            (fun id f ->
              if rel_diff f reference.(id) > flow_rtol then
                Alcotest.failf "%s m=%d job %d: live %.17g vs run %.17g" (Live.spec_name spec)
                  machines id f reference.(id))
            flows;
          Alcotest.(check int)
            (Live.spec_name spec ^ " completes everything")
            (Instance.n inst) stats.Live.completed;
          (* The live norm folds the same completions the reference sums. *)
          let ref_norm = Rr_metrics.Norms.lk ~k reference in
          Alcotest.(check bool)
            (Live.spec_name spec ^ " live norm agrees")
            true
            (rel_diff stats.Live.norm ref_norm <= flow_rtol))
        [ 1; 2; 8 ])
    live_specs

(* ------------------------------------------------------------------ *)
(* Interleaved submit/advance property                                 *)
(* ------------------------------------------------------------------ *)

let interleave_gen =
  QCheck2.Gen.(
    let pairs = list_size (int_range 1 60) (pair (float_range 0. 30.) (float_range 0.05 5.)) in
    let machines = oneofl [ 1; 2; 8 ] in
    let speed = oneofl [ 1.; 1.3 ] in
    (* One fraction per job decides how far into the gap before its
       arrival the clock is pushed first — 0 leaves the closed event
       sequence intact, anything else splits inter-event intervals. *)
    let fracs = list_size (int_range 1 60) (float_range 0. 1.) in
    quad pairs machines speed fracs)

let prop_interleaved_matches_run spec policy =
  QCheck2.Test.make
    ~name:(Printf.sprintf "interleaved live %s matches Run.simulate" (Live.spec_name spec))
    ~count:100 interleave_gen
    (fun (pairs, machines, speed, fracs) ->
      let inst = Instance.of_jobs pairs in
      let fracs = Array.of_list fracs in
      let frac i = fracs.(i mod Array.length fracs) in
      let reference =
        Run.flows (Run.config ~machines ~speed ~cache:false ~engine:`General ()) policy inst
      in
      let interleave live (j : Rr_engine.Job.t) =
        let now = Live.now live in
        Live.advance live (now +. (frac j.id *. (j.arrival -. now)))
      in
      let flows, _ = live_flows ~interleave ~machines ~speed ~k:2 spec inst in
      Array.for_all2 (fun a b -> rel_diff a b <= flow_rtol) flows reference)

let interleaved_props =
  List.map (fun (spec, policy) -> prop_interleaved_matches_run spec policy) live_specs

(* ------------------------------------------------------------------ *)
(* Snapshot / restore round-trip                                       *)
(* ------------------------------------------------------------------ *)

let test_snapshot_roundtrip () =
  List.iter
    (fun (spec, _) ->
      let inst = poisson_instance ~seed:7 ~machines:2 ~n:200 in
      let jobs = Instance.jobs inst in
      let live = Live.create ~machines:2 ~speed:1. ~k:2 spec in
      List.iter (fun (j : Rr_engine.Job.t) ->
          ignore (Live.submit live ~arrival:j.arrival ~size:j.size))
        jobs;
      (* Advance halfway through the arrival span, snapshot mid-flight
         (jobs alive and pending), then finish both copies. *)
      let horizon = (List.nth jobs (List.length jobs / 2)).Rr_engine.Job.arrival in
      Live.advance live horizon;
      let bytes = Live.to_bytes live in
      let restored = Live.of_bytes bytes in
      Live.drain live;
      Live.drain restored;
      let a = Live.query live and b = Live.query restored in
      (* Continuation from identical state is deterministic: bit-equal. *)
      Alcotest.(check int) (Live.spec_name spec ^ " completed") a.Live.completed b.Live.completed;
      Alcotest.(check int) (Live.spec_name spec ^ " events") a.Live.events b.Live.events;
      Alcotest.(check (float 0.)) (Live.spec_name spec ^ " norm") a.Live.norm b.Live.norm;
      Alcotest.(check (float 0.))
        (Live.spec_name spec ^ " power_sum")
        a.Live.power_sum b.Live.power_sum;
      Alcotest.(check (float 0.))
        (Live.spec_name spec ^ " makespan")
        a.Live.makespan b.Live.makespan;
      Alcotest.(check (float 0.)) (Live.spec_name spec ^ " p99") a.Live.p99 b.Live.p99)
    live_specs

let test_snapshot_file_roundtrip () =
  let live = Live.create Live.Equal_share in
  ignore (Live.submit live ~arrival:0. ~size:2.);
  ignore (Live.submit live ~arrival:0.5 ~size:1.);
  Live.advance live 1.;
  let path = Filename.temp_file "rr_live" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Live.save live path;
      let restored = Live.load path in
      Live.drain live;
      Live.drain restored;
      Alcotest.(check (float 0.))
        "file round-trip norm" (Live.query live).Live.norm (Live.query restored).Live.norm);
  (* Garbage is rejected by the magic header, not by a Marshal crash. *)
  Alcotest.check_raises "of_bytes rejects garbage"
    (Failure "Live.of_bytes: not a live-engine snapshot") (fun () ->
      ignore (Live.of_bytes (Bytes.of_string "definitely not a snapshot")))

(* ------------------------------------------------------------------ *)
(* Submit validation and resumability                                  *)
(* ------------------------------------------------------------------ *)

let test_submit_validation () =
  let live = Live.create Live.Equal_share in
  ignore (Live.submit live ~arrival:2. ~size:1.);
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect_invalid "decreasing arrival" (fun () -> Live.submit live ~arrival:1. ~size:1.);
  expect_invalid "nan arrival" (fun () -> Live.submit live ~arrival:Float.nan ~size:1.);
  expect_invalid "non-positive size" (fun () -> Live.submit live ~arrival:3. ~size:0.);
  expect_invalid "nan horizon" (fun () -> Live.advance live Float.nan);
  Live.drain live;
  (* The clock parks at the last completion, so the engine accepts more
     work afterwards — drain is a checkpoint, not an end state. *)
  ignore (Live.submit live ~arrival:(Live.now live +. 1.) ~size:0.5);
  Live.drain live;
  Alcotest.(check int) "resumed after drain" 2 (Live.query live).Live.completed;
  expect_invalid "arrival in the simulated past" (fun () ->
      Live.submit live ~arrival:0. ~size:1.)

(* ------------------------------------------------------------------ *)
(* Engine selection surface                                            *)
(* ------------------------------------------------------------------ *)

let test_selection_surface () =
  let rr = Rr_policies.Round_robin.policy and srpt = Rr_policies.Srpt.policy in
  let sel engine policy = Run.selection_for (Run.config ~engine ()) policy in
  Alcotest.(check bool) "auto picks equal-share for rr" true (sel `Auto rr = Run.Equal_share);
  (* [`Live] routes every classified policy through [Live.Classified];
     spec_name keeps the historical spellings, so audit names are stable. *)
  Alcotest.(check bool) "live rr" true
    (sel `Live rr = Run.Live (Live.Classified Rr_engine.Policy_class.Equal_share));
  Alcotest.(check bool) "live srpt" true
    (sel `Live srpt
    = Run.Live
        (Live.Classified (Rr_engine.Policy_class.Static_key Rr_engine.Policy_class.Key_remaining)));
  Alcotest.(check string) "live engine name" "live-equal-share"
    (Run.engine_name (Run.config ~engine:`Live ()) rr);
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect_invalid "equal-share refuses srpt" (fun () -> sel `Equal_share srpt);
  expect_invalid "indexed refuses rr" (fun () -> sel `Indexed rr);
  (* Classified policies all carry a live core now; only policies with no
     class declaration (klass = None) are refused. *)
  let laps = Rr_policies.Registry.make (Rr_policies.Registry.Laps 0.25) in
  Alcotest.(check bool) "live accepts classified laps" true
    (match sel `Live laps with Run.Live (Live.Classified _) -> true | _ -> false);
  let unclassified =
    { Rr_policies.Srpt.policy with Rr_engine.Policy.name = "unclassified"; klass = None }
  in
  expect_invalid "live refuses unclassified policies" (fun () -> sel `Live unclassified)

let test_live_measure_agrees_and_never_aliases () =
  Cache.clear ();
  let srpt = Rr_policies.Srpt.policy in
  let inst = poisson_instance ~seed:3 ~machines:1 ~n:150 in
  let auto = Run.measure (Run.config ()) srpt inst in
  let live = Run.measure (Run.config ~engine:`Live ()) srpt inst in
  let s = Cache.stats () in
  Alcotest.(check int) "distinct cache keys" 2 s.misses;
  Alcotest.(check bool) "norm agrees" true (rel_diff auto.Run.norm live.Run.norm <= flow_rtol);
  Alcotest.(check bool) "mean agrees" true
    (rel_diff auto.Run.mean_flow live.Run.mean_flow <= flow_rtol);
  Alcotest.(check bool) "max agrees" true
    (rel_diff auto.Run.max_flow live.Run.max_flow <= flow_rtol)

let test_live_measure_stream_agrees () =
  let stream =
    Instance.Stream.generate_load ~seed:5
      ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
      ~load:0.9 ~machines:2 ~n:2_000 ()
  in
  let rr = Rr_policies.Round_robin.policy in
  let auto = Run.measure_stream (Run.config ~machines:2 ~cache:false ()) rr stream in
  let live = Run.measure_stream (Run.config ~machines:2 ~cache:false ~engine:`Live ()) rr stream in
  Alcotest.(check int) "same n" auto.Run.n live.Run.n;
  Alcotest.(check bool) "stream norm agrees" true
    (rel_diff auto.Run.norm live.Run.norm <= flow_rtol)

let qsuite = List.map QCheck_alcotest.to_alcotest interleaved_props

let () =
  Alcotest.run "rr_live"
    [
      ( "differential",
        [
          Alcotest.test_case "upfront feed matches Run (5 specs x m in {1,2,8})" `Quick
            test_upfront_matches_run;
        ] );
      ("interleaved", qsuite);
      ( "snapshot",
        [
          Alcotest.test_case "mid-flight bytes round-trip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "file round-trip + garbage rejection" `Quick
            test_snapshot_file_roundtrip;
        ] );
      ( "lifecycle",
        [ Alcotest.test_case "submit validation and resume after drain" `Quick test_submit_validation ] );
      ( "selection",
        [
          Alcotest.test_case "selection_for surface" `Quick test_selection_surface;
          Alcotest.test_case "live measure agrees, never aliases" `Quick
            test_live_measure_agrees_and_never_aliases;
          Alcotest.test_case "live measure_stream agrees" `Quick test_live_measure_stream_agrees;
        ] );
    ]
