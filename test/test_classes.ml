(* The classification layer's outward guarantees:

   - every policy the registry ships is classified, and the README's
     engine-coverage table names each one with its class description and
     kernel audit string — regenerated here from the registry so the
     docs cannot go stale;
   - the starvation-mitigation hybrid reproduces Kuo's l2/l1 tradeoff:
     as theta sweeps up the l1 cost (vs SRPT) falls monotonically to 1,
     the max-flow tail grows toward SRPT's, and the theta -> infinity
     endpoint is SRPT itself. *)

open Temporal_fairness
module Policy = Rr_engine.Policy
module Policy_class = Rr_engine.Policy_class
module Registry = Rr_policies.Registry

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* README coverage table                                               *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Under [dune runtest] the cwd is [_build/default/test] and the stanza
   declares the README as a dependency, so the parent copy is current;
   under [dune exec] the cwd is the workspace root.  Probe upwards. *)
let readme_path =
  let candidates =
    [ "README.md"; Filename.concat Filename.parent_dir_name "README.md" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.nth candidates 1

let surface_name spec =
  match String.split_on_char ':' (Registry.spec_to_string spec) with
  | name :: _ -> name
  | [] -> assert false

let test_registry_fully_classified () =
  List.iter
    (fun spec ->
      let policy = Registry.make spec in
      match policy.Policy.klass with
      | Some klass ->
          Alcotest.(check bool)
            (policy.Policy.name ^ " clairvoyance agrees with its class")
            policy.Policy.clairvoyant (Policy_class.clairvoyant klass)
      | None ->
          Alcotest.failf "registry policy %s (%s) is unclassified" policy.Policy.name
            (Registry.spec_to_string spec))
    (Registry.default_specs ())

let test_readme_coverage_table () =
  let readme = read_file readme_path in
  List.iter
    (fun spec ->
      let policy = Registry.make spec in
      let klass = Option.get policy.Policy.klass in
      let name = surface_name spec in
      let row_cell what s =
        Alcotest.(check bool)
          (Printf.sprintf "README names %s of %s (%S)" what name s)
          true (contains ~sub:s readme)
      in
      row_cell "the policy" ("`" ^ name ^ "`");
      row_cell "the class" (Policy_class.describe klass);
      row_cell "the engine" ("`" ^ Policy_class.engine_name klass ^ "`"))
    (Registry.default_specs ())

(* ------------------------------------------------------------------ *)
(* Hybrid l2/l1 tradeoff (Kuo)                                         *)
(* ------------------------------------------------------------------ *)

let heavy_instance ~seed ~n =
  let rng = Rr_util.Prng.create ~seed in
  Rr_workload.Instance.generate_load ~rng
    ~sizes:(Rr_workload.Distribution.Bounded_pareto { alpha = 1.5; x_min = 0.5; x_max = 50. })
    ~load:0.9 ~machines:1 ~n ()

let test_hybrid_tradeoff_monotone () =
  let inst = heavy_instance ~seed:83 ~n:400 in
  let cfg = Run.config ~machines:1 ~k:2 ~cache:false () in
  let srpt = Run.measure cfg Rr_policies.Srpt.policy inst in
  let thetas = [ 0.25; 1.; 4.; 32.; 256. ] in
  let runs =
    List.map (fun theta -> Run.measure cfg (Rr_policies.Hybrid.policy ~theta ()) inst) thetas
  in
  (* The l1 premium over SRPT decays monotonically as theta loosens the
     starvation guard (2% slack absorbs simulation noise on one
     instance). *)
  ignore
    (List.fold_left
       (fun (prev_theta, prev) (theta, r) ->
         let v = r.Run.mean_flow /. srpt.Run.mean_flow in
         if v > prev *. 1.02 then
           Alcotest.failf "l1 ratio rose from %.6f (theta=%g) to %.6f (theta=%g)" prev prev_theta
             v theta;
         (theta, v))
       (0., Float.infinity)
       (List.combine thetas runs));
  (* The l2 curve is not monotone — it dips below 1 at moderate theta
     (protecting the starved tail beats SRPT on the l2 norm, the
     phenomenon the lk objective arbitrates) before returning to 1. *)
  let l2_min =
    List.fold_left (fun acc r -> Float.min acc (r.Run.norm /. srpt.Run.norm)) Float.infinity runs
  in
  Alcotest.(check bool) "some theta beats SRPT on l2" true (l2_min < 1.);
  (* Tight theta buys a shorter tail than SRPT's; the price is l1. *)
  let tight = List.hd runs in
  Alcotest.(check bool) "theta=0.25 shortens the max-flow tail" true
    (tight.Run.max_flow < srpt.Run.max_flow);
  Alcotest.(check bool) "theta=0.25 pays for it in l1" true
    (tight.Run.mean_flow > srpt.Run.mean_flow);
  (* theta -> infinity is SRPT: no job ever crosses the stretch
     threshold inside the horizon, so the runs coincide. *)
  let limit = Run.measure cfg (Rr_policies.Hybrid.policy ~theta:1e9 ()) inst in
  let close what a b =
    let rel = Float.abs (a -. b) /. Float.max 1e-12 (Float.abs b) in
    Alcotest.(check bool) (what ^ " matches SRPT at huge theta") true (rel <= 1e-9)
  in
  close "l1" limit.Run.mean_flow srpt.Run.mean_flow;
  close "l2" limit.Run.norm srpt.Run.norm;
  close "max flow" limit.Run.max_flow srpt.Run.max_flow

let () =
  Alcotest.run "rr_classes"
    [
      ( "coverage",
        [
          Alcotest.test_case "registry fully classified" `Quick test_registry_fully_classified;
          Alcotest.test_case "README table complete" `Quick test_readme_coverage_table;
        ] );
      ( "hybrid",
        [ Alcotest.test_case "l2/l1 tradeoff vs theta" `Quick test_hybrid_tradeoff_monotone ] );
    ]
