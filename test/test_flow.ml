(* Tests for the min-cost max-flow solver, including randomized
   cross-checks against the dense simplex on transportation problems. *)

open Rr_flow

let check_close ?(tol = 1e-6) msg a b = Alcotest.(check (float tol)) msg a b

(* ------------------------------------------------------------------ *)
(* Hand networks                                                       *)
(* ------------------------------------------------------------------ *)

let test_single_edge () =
  let net = Mcmf.create ~n_nodes:2 in
  let e = Mcmf.add_edge net ~src:0 ~dst:1 ~capacity:3. ~cost:2. in
  let { Mcmf.flow; cost } = Mcmf.solve net ~source:0 ~sink:1 in
  check_close "flow" 3. flow;
  check_close "cost" 6. cost;
  check_close "edge flow" 3. (Mcmf.flow_on net e)

let test_two_paths_prefers_cheap () =
  (* Two parallel 0->1 edges: cheap (cap 2, cost 1) and dear (cap 5, cost 10).
     Pushing 4 units: 2 cheap + 2 dear = 22. *)
  let net = Mcmf.create ~n_nodes:2 in
  let cheap = Mcmf.add_edge net ~src:0 ~dst:1 ~capacity:2. ~cost:1. in
  let dear = Mcmf.add_edge net ~src:0 ~dst:1 ~capacity:5. ~cost:10. in
  let { Mcmf.flow; cost } = Mcmf.solve ~max_flow:4. net ~source:0 ~sink:1 in
  check_close "flow" 4. flow;
  check_close "cost" 22. cost;
  check_close "cheap saturated" 2. (Mcmf.flow_on net cheap);
  check_close "dear partial" 2. (Mcmf.flow_on net dear)

let test_rerouting_via_residual () =
  (* Classic residual test: diamond where the greedy first path must be
     partially undone.  Nodes 0 (s), 1, 2, 3 (t).
     0->1 cap 1 cost 1, 0->2 cap 1 cost 2, 1->3 cap 1 cost 2,
     2->3 cap 1 cost 1, 1->2 cap 1 cost 0.
     Max flow 2 with min cost: 0->1->3 (3) + 0->2->3 (3) = 6. *)
  let net = Mcmf.create ~n_nodes:4 in
  ignore (Mcmf.add_edge net ~src:0 ~dst:1 ~capacity:1. ~cost:1.);
  ignore (Mcmf.add_edge net ~src:0 ~dst:2 ~capacity:1. ~cost:2.);
  ignore (Mcmf.add_edge net ~src:1 ~dst:3 ~capacity:1. ~cost:2.);
  ignore (Mcmf.add_edge net ~src:2 ~dst:3 ~capacity:1. ~cost:1.);
  ignore (Mcmf.add_edge net ~src:1 ~dst:2 ~capacity:1. ~cost:0.);
  let { Mcmf.flow; cost } = Mcmf.solve net ~source:0 ~sink:3 in
  check_close "flow" 2. flow;
  check_close "cost" 6. cost;
  Alcotest.(check bool) "optimality certificate" true (Mcmf.no_negative_cycle net)

let test_disconnected () =
  let net = Mcmf.create ~n_nodes:3 in
  ignore (Mcmf.add_edge net ~src:0 ~dst:1 ~capacity:1. ~cost:1.);
  let { Mcmf.flow; cost } = Mcmf.solve net ~source:0 ~sink:2 in
  check_close "no flow" 0. flow;
  check_close "no cost" 0. cost

let test_max_flow_cap () =
  let net = Mcmf.create ~n_nodes:2 in
  ignore (Mcmf.add_edge net ~src:0 ~dst:1 ~capacity:10. ~cost:1.);
  let { Mcmf.flow; _ } = Mcmf.solve ~max_flow:4. net ~source:0 ~sink:1 in
  check_close "respects max_flow" 4. flow

let test_validation () =
  let net = Mcmf.create ~n_nodes:2 in
  List.iter
    (fun f ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected rejection")
    [
      (fun () -> ignore (Mcmf.create ~n_nodes:0));
      (fun () -> ignore (Mcmf.add_edge net ~src:0 ~dst:5 ~capacity:1. ~cost:1.));
      (fun () -> ignore (Mcmf.add_edge net ~src:0 ~dst:1 ~capacity:(-1.) ~cost:1.));
      (fun () -> ignore (Mcmf.add_edge net ~src:0 ~dst:1 ~capacity:1. ~cost:(-1.)));
      (fun () -> ignore (Mcmf.add_edge net ~src:0 ~dst:1 ~capacity:Float.nan ~cost:1.));
      (fun () -> ignore (Mcmf.solve net ~source:0 ~sink:0));
    ]

(* ------------------------------------------------------------------ *)
(* Cross-check against the simplex on random transportation problems   *)
(* ------------------------------------------------------------------ *)

(* Random transportation instance: [supplies] at sources, [demands] at
   sinks with total demand >= total supply, full bipartite cost matrix. *)
let transportation_gen =
  QCheck2.Gen.(
    let* ns = int_range 1 4 in
    let* nd = int_range 1 4 in
    let* supplies = list_repeat ns (float_range 0.5 5.) in
    let* caps = list_repeat nd (float_range 1. 10.) in
    let* costs = list_repeat (ns * nd) (float_range 0. 9.) in
    return (supplies, caps, costs))

let solve_by_mcmf (supplies, caps, costs) =
  let ns = List.length supplies and nd = List.length caps in
  let total_supply = List.fold_left ( +. ) 0. supplies in
  let total_caps = List.fold_left ( +. ) 0. caps in
  if total_caps < total_supply then None
  else begin
    let net = Mcmf.create ~n_nodes:(ns + nd + 2) in
    let source = 0 and sink = ns + nd + 1 in
    List.iteri
      (fun i s -> ignore (Mcmf.add_edge net ~src:source ~dst:(1 + i) ~capacity:s ~cost:0.))
      supplies;
    List.iteri
      (fun j c ->
        ignore (Mcmf.add_edge net ~src:(1 + ns + j) ~dst:sink ~capacity:c ~cost:0.))
      caps;
    let costs = Array.of_list costs in
    for i = 0 to ns - 1 do
      for j = 0 to nd - 1 do
        ignore
          (Mcmf.add_edge net ~src:(1 + i) ~dst:(1 + ns + j) ~capacity:1e9
             ~cost:costs.((i * nd) + j))
      done
    done;
    let { Mcmf.flow; cost } = Mcmf.solve net ~source ~sink in
    if not (Mcmf.no_negative_cycle net) then None
    else if flow < total_supply -. 1e-6 then None
    else Some cost
  end

let solve_by_simplex (supplies, caps, costs) =
  let ns = List.length supplies and nd = List.length caps in
  let nvars = ns * nd in
  let objective = Array.of_list costs in
  let rows = ref [] in
  List.iteri
    (fun i s ->
      let row = Array.make nvars 0. in
      for j = 0 to nd - 1 do
        row.((i * nd) + j) <- 1.
      done;
      rows := (row, Rr_lp.Simplex.Ge, s) :: !rows)
    supplies;
  List.iteri
    (fun j c ->
      let row = Array.make nvars 0. in
      for i = 0 to ns - 1 do
        row.((i * nd) + j) <- 1.
      done;
      rows := (row, Rr_lp.Simplex.Le, c) :: !rows)
    caps;
  match Rr_lp.Simplex.solve { objective; rows = !rows } with
  | Rr_lp.Simplex.Optimal { objective; _ } -> Some objective
  | Rr_lp.Simplex.Infeasible | Rr_lp.Simplex.Unbounded -> None

let prop_mcmf_matches_simplex =
  QCheck2.Test.make ~name:"mcmf = simplex on transportation problems" ~count:150
    transportation_gen
    (fun inst ->
      match (solve_by_mcmf inst, solve_by_simplex inst) with
      | Some a, Some b -> Float.abs (a -. b) <= 1e-5 *. (1. +. Float.abs a)
      | None, None -> true
      | Some _, None | None, Some _ -> false)

let prop_flow_bounded_by_capacity =
  QCheck2.Test.make ~name:"per-edge flow within capacity" ~count:100
    QCheck2.Gen.(list_size (int_range 1 10) (float_range 0.1 5.))
    (fun caps ->
      let n = List.length caps in
      let net = Mcmf.create ~n_nodes:(n + 2) in
      let handles =
        List.mapi
          (fun i c ->
            ignore (Mcmf.add_edge net ~src:0 ~dst:(1 + i) ~capacity:c ~cost:(Float.of_int i));
            (Mcmf.add_edge net ~src:(1 + i) ~dst:(n + 1) ~capacity:c ~cost:0., c))
          caps
      in
      ignore (Mcmf.solve net ~source:0 ~sink:(n + 1));
      List.for_all (fun (e, c) -> Mcmf.flow_on net e <= c +. 1e-9) handles)

(* ------------------------------------------------------------------ *)
(* Warm-started resolves                                               *)
(* ------------------------------------------------------------------ *)

let test_consumed_raises () =
  let net = Mcmf.create ~n_nodes:2 in
  ignore (Mcmf.add_edge net ~src:0 ~dst:1 ~capacity:3. ~cost:2.);
  Alcotest.(check bool) "fresh network unsolved" false (Mcmf.solved net);
  ignore (Mcmf.solve net ~source:0 ~sink:1);
  Alcotest.(check bool) "solved flag set" true (Mcmf.solved net);
  Alcotest.check_raises "second cold solve refused"
    (Invalid_argument
       "Mcmf.solve: network already consumed (capacities hold the residual state of a \
        previous solve); build a fresh network, or use Mcmf.resolve to continue this one \
        after a perturbation")
    (fun () -> ignore (Mcmf.solve net ~source:0 ~sink:1))

let test_resolve_requires_solve () =
  let net = Mcmf.create ~n_nodes:2 in
  ignore (Mcmf.add_edge net ~src:0 ~dst:1 ~capacity:3. ~cost:2.);
  Alcotest.check_raises "resolve before solve refused"
    (Invalid_argument "Mcmf.resolve: network not solved yet; call Mcmf.solve first")
    (fun () -> ignore (Mcmf.resolve net ~source:0 ~sink:1))

(* Transportation network in the LP's shape — per-supplier arc costs
   non-decreasing in slot index, so adding the trailing slot range after a
   solve (the widening the sparse LP build performs) never creates a
   negative residual cycle.  The staged solve -> add_edge -> resolve
   cumulative outcome must match a cold solve of the full network. *)
let warm_gen =
  QCheck2.Gen.(
    let* ns = int_range 1 4 in
    let* nd = int_range 2 8 in
    let* split = int_range 1 (nd - 1) in
    let* supplies = list_repeat ns (float_range 0.5 5.) in
    let* caps = list_repeat nd (float_range 0.5 4.) in
    let* increments = list_repeat (ns * nd) (float_range 0. 3.) in
    return (supplies, caps, split, increments))

let prop_warm_resolve_equals_cold =
  QCheck2.Test.make ~name:"warm resolve = cold solve after widening" ~count:200 warm_gen
    (fun (supplies, caps, split, increments) ->
      let ns = List.length supplies and nd = List.length caps in
      let supplies = Array.of_list supplies and caps = Array.of_list caps in
      let increments = Array.of_list increments in
      let costs =
        Array.init ns (fun i ->
            let acc = ref 0. in
            Array.init nd (fun j ->
                acc := !acc +. increments.((i * nd) + j);
                !acc))
      in
      let source = 0 and sink = ns + nd + 1 in
      let build_base () =
        let net = Mcmf.create ~n_nodes:(ns + nd + 2) in
        Array.iteri
          (fun i s -> ignore (Mcmf.add_edge net ~src:source ~dst:(1 + i) ~capacity:s ~cost:0.))
          supplies;
        net
      in
      let add_slots net lo hi =
        for j = lo to hi - 1 do
          ignore (Mcmf.add_edge net ~src:(1 + ns + j) ~dst:sink ~capacity:caps.(j) ~cost:0.);
          for i = 0 to ns - 1 do
            ignore
              (Mcmf.add_edge net ~src:(1 + i) ~dst:(1 + ns + j) ~capacity:10.
                 ~cost:costs.(i).(j))
          done
        done
      in
      let cold = build_base () in
      add_slots cold 0 nd;
      let cold_out = Mcmf.solve cold ~source ~sink in
      let warm = build_base () in
      add_slots warm 0 split;
      ignore (Mcmf.solve warm ~source ~sink);
      add_slots warm split nd;
      let warm_out = Mcmf.resolve warm ~source ~sink in
      let close a b = Float.abs (a -. b) <= 1e-9 *. (1. +. Float.abs b) in
      close warm_out.Mcmf.flow cold_out.Mcmf.flow
      && close warm_out.Mcmf.cost cold_out.Mcmf.cost
      && Mcmf.no_negative_cycle warm)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_mcmf_matches_simplex; prop_flow_bounded_by_capacity; prop_warm_resolve_equals_cold ]

let () =
  Alcotest.run "rr_flow"
    [
      ( "hand networks",
        [
          Alcotest.test_case "single edge" `Quick test_single_edge;
          Alcotest.test_case "prefers cheap" `Quick test_two_paths_prefers_cheap;
          Alcotest.test_case "residual rerouting" `Quick test_rerouting_via_residual;
          Alcotest.test_case "disconnected" `Quick test_disconnected;
          Alcotest.test_case "max flow cap" `Quick test_max_flow_cap;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "warm start",
        [
          Alcotest.test_case "consumed network refused" `Quick test_consumed_raises;
          Alcotest.test_case "resolve needs a solve" `Quick test_resolve_requires_solve;
        ] );
      ("properties", qsuite);
    ]
