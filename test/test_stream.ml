(* Tests for the streaming pipeline: lazy Instance.Stream workloads, the
   completion-sink entry points of both engines, and the incremental
   Rr_metrics.Sink folds — the whole pipeline must agree with the
   materialized array path to within summation-order rounding. *)

open Temporal_fairness
module Simulator = Rr_engine.Simulator
module Instance = Rr_workload.Instance
module Stream = Rr_workload.Instance.Stream
module Sink = Rr_metrics.Sink

let rr = Rr_policies.Round_robin.policy

(* Streamed folds accumulate in completion order, materialized ones in job-id
   order; with compensated summation everywhere, 1e-9 relative covers the
   reordering on every workload size used here. *)
let rtol = 1e-9

let rel_diff a b = Float.abs (a -. b) /. Float.max 1e-12 (Float.max (Float.abs a) (Float.abs b))

let close name a b =
  if rel_diff a b > rtol then Alcotest.failf "%s: %.17g vs %.17g (rel %.3e)" name a b (rel_diff a b)

(* All five arrival shapes, tuned so that ~60 jobs produce overlapping
   alive sets (the regime where completion order differs most from id
   order). *)
let arrival_shapes : Rr_workload.Arrivals.t list =
  [
    Poisson { rate = 1.2 };
    Periodic { interval = 0.8 };
    Batched { batch = 5; interval = 4. };
    Bursty { rate_low = 0.5; rate_high = 4.; mean_dwell = 6. };
    Diurnal { base_rate = 1.; amplitude = 0.7; period = 20. };
  ]

let stream_of ~seed ~arrivals ~n =
  Stream.generate ~seed ~arrivals
    ~sizes:(Rr_workload.Distribution.Exponential { mean = 1. })
    ~n ()

(* ------------------------------------------------------------------ *)
(* Property: streamed folds = array folds, both engines, m in {1,2,4}   *)
(* ------------------------------------------------------------------ *)

let check_stream_matches_materialized ?(mk_policy = fun () -> rr) ~arrivals ~machines ~engine
    ~seed () =
  let n = 60 in
  let stream = stream_of ~seed ~arrivals ~n in
  let inst = Stream.materialize stream in
  let cfg = Run.config ~machines ~speed:2. ~k:3 ~engine ~cache:false () in
  let policy = mk_policy () in
  (* Array path: exact sort-based stats over the materialized flow vector. *)
  let flows = Run.flows cfg policy inst in
  let stats_mat = Rr_metrics.Flow_stats.of_flows flows in
  (* Streamed path: every fold fed by the engine's sink, no flow vector. *)
  let stats_sink = Rr_metrics.Flow_stats.sink () in
  let lk3 = Sink.lk ~k:3 () in
  let linf = Sink.linf () in
  let nlk2 = Sink.normalized_lk ~k:2 () in
  let count = Sink.count () in
  let summary =
    Run.simulate_stream cfg policy stream
      ~sink:(fun ~id:_ ~arrival:_ ~flow ->
        Sink.push stats_sink flow;
        Sink.push lk3 flow;
        Sink.push linf flow;
        Sink.push nlk2 flow;
        Sink.push count flow)
  in
  let s = Sink.value stats_sink in
  Alcotest.(check int) "summary.n" n summary.Simulator.n;
  Alcotest.(check int) "sink count" n (Sink.value count);
  Alcotest.(check int) "stats n" n s.Rr_metrics.Flow_stats.n;
  close "mean" stats_mat.mean s.mean;
  close "variance" stats_mat.variance s.variance;
  close "max" stats_mat.max s.max;
  close "min" stats_mat.min s.min;
  close "l1" stats_mat.l1 s.l1;
  close "l2" stats_mat.l2 s.l2;
  close "l3" stats_mat.l3 s.l3;
  close "lk3" (Rr_metrics.Norms.lk ~k:3 flows) (Sink.value lk3);
  close "linf" (Rr_metrics.Norms.linf flows) (Sink.value linf);
  close "normalized lk2" (Rr_metrics.Norms.normalized_lk ~k:2 flows) (Sink.value nlk2);
  (* Run.measure_stream must agree with Run.measure on the same jobs. *)
  let r_mat = Run.measure cfg policy inst in
  let r_str = Run.measure_stream cfg policy stream in
  Alcotest.(check int) "measure n" r_mat.Run.n r_str.Run.n;
  close "measure norm" r_mat.Run.norm r_str.Run.norm;
  close "measure power_sum" r_mat.Run.power_sum r_str.Run.power_sum;
  close "measure mean" r_mat.Run.mean_flow r_str.Run.mean_flow;
  close "measure max" r_mat.Run.max_flow r_str.Run.max_flow

let test_stream_matches_materialized () =
  List.iteri
    (fun i arrivals ->
      List.iter
        (fun machines ->
          List.iter
            (fun engine ->
              check_stream_matches_materialized ~arrivals ~machines ~engine
                ~seed:(1000 + i) ())
            (* `Auto exercises the equal-share streaming engine, `General
               the general event loop's sink path. *)
            [ `Auto; `General ])
        [ 1; 2; 4 ])
    arrival_shapes

let test_stream_matches_materialized_fast_engines () =
  (* Same agreement for the streaming entry points of every specialised
     engine (`Auto; the general streamed path is covered above).  One
     arrival shape per policy keeps the matrix affordable; the Poisson
     shape runs everywhere. *)
  List.iter
    (fun spec ->
      List.iteri
        (fun i arrivals ->
          List.iter
            (fun machines ->
              check_stream_matches_materialized
                ~mk_policy:(fun () -> Rr_policies.Registry.make spec)
                ~arrivals ~machines ~engine:`Auto ~seed:(2000 + i) ())
            [ 1; 2; 8 ])
        arrival_shapes)
    Rr_policies.Registry.
      [
        Srpt;
        Sjf;
        Fcfs;
        Setf;
        Hdf 2.;
        Laps 0.5;
        Mlfq 0.5;
        Quantum_rr 1.;
        Wrr_age 2;
        Wrr_static 1.;
        Hybrid 3.;
        Srpt_mig 1;
      ]

(* ------------------------------------------------------------------ *)
(* Stream semantics                                                    *)
(* ------------------------------------------------------------------ *)

let test_stream_digest_equals_materialized () =
  List.iteri
    (fun i arrivals ->
      let stream = stream_of ~seed:(50 + i) ~arrivals ~n:40 in
      let inst = Stream.materialize stream in
      Alcotest.(check bool)
        (Printf.sprintf "digest %d" i)
        true
        (Int64.equal (Stream.digest stream) (Instance.digest inst)))
    arrival_shapes

let test_stream_replayable () =
  (* Two cursors on the same stream value yield identical job sequences;
     a cursor is not consumed by digesting or simulating. *)
  let stream = stream_of ~seed:7 ~arrivals:(Poisson { rate = 1. }) ~n:25 in
  let drain () =
    let pull = Stream.start stream in
    let rec go acc = match pull () with None -> List.rev acc | Some j -> go (j :: acc) in
    go []
  in
  let a = drain () in
  let (_ : int64) = Stream.digest stream in
  let b = drain () in
  Alcotest.(check int) "same length" (List.length a) (List.length b);
  List.iter2
    (fun (x : Rr_engine.Job.t) (y : Rr_engine.Job.t) ->
      Alcotest.(check bool) "same job" true
        (x.id = y.id && x.arrival = y.arrival && x.size = y.size))
    a b;
  (* Ids are dense and arrivals non-decreasing. *)
  List.iteri (fun i (j : Rr_engine.Job.t) -> Alcotest.(check int) "dense id" i j.id) a;
  let rec mono = function
    | (a : Rr_engine.Job.t) :: (b : Rr_engine.Job.t) :: tl ->
        Alcotest.(check bool) "sorted" true (a.arrival <= b.arrival);
        mono (b :: tl)
    | _ -> ()
  in
  mono a

let test_digest_memoized () =
  (* The memo fills on first use and survives relabeling (the digest is
     label-independent by construction). *)
  let inst = Instance.of_jobs [ (0., 1.); (0.5, 2.); (1., 0.25) ] in
  Alcotest.(check bool) "starts empty" true (Option.is_none !(inst.Instance.digest_memo));
  let d = Instance.digest inst in
  Alcotest.(check bool) "filled" true (Option.is_some !(inst.Instance.digest_memo));
  let relabeled = Instance.relabel "other" inst in
  Alcotest.(check bool) "memo shared across relabel" true
    (match !(relabeled.Instance.digest_memo) with
    | Some d' -> Int64.equal d d'
    | None -> false);
  Alcotest.(check bool) "same digest" true (Int64.equal d (Instance.digest relabeled));
  (* A stream and its materialization share the memo ref, so digesting one
     fills the other. *)
  let stream = stream_of ~seed:3 ~arrivals:(Periodic { interval = 1. }) ~n:10 in
  let mat = Stream.materialize stream in
  Alcotest.(check bool) "stream memo empty" true (Option.is_none !(mat.Instance.digest_memo));
  let ds = Stream.digest stream in
  Alcotest.(check bool) "materialization sees the memo" true
    (match !(mat.Instance.digest_memo) with Some d' -> Int64.equal ds d' | None -> false)

let test_measure_stream_cache () =
  (* Streamed measurements cache under streamed=true keys: they hit on
     re-measure but never alias the materialized entry for the same jobs. *)
  Cache.clear ();
  let stream = stream_of ~seed:21 ~arrivals:(Poisson { rate = 1. }) ~n:30 in
  let cfg = Run.config () in
  let r1 = Run.measure_stream cfg rr stream in
  let s1 = Cache.stats () in
  Alcotest.(check int) "first is a miss" 1 s1.misses;
  let r2 = Run.measure_stream cfg rr stream in
  let s2 = Cache.stats () in
  Alcotest.(check int) "second is a hit" 1 s2.hits;
  Alcotest.(check bool) "identical result" true (r1 = r2);
  let inst = Stream.materialize stream in
  let (_ : Run.result) = Run.measure cfg rr inst in
  let s3 = Cache.stats () in
  Alcotest.(check int) "materialized misses despite equal digest" 2 s3.misses;
  Alcotest.(check int) "two distinct entries" 2 s3.size

(* ------------------------------------------------------------------ *)
(* Sink fold unit behaviour                                            *)
(* ------------------------------------------------------------------ *)

let test_quantile_sketch_accuracy () =
  (* P-squared estimates against exact order statistics on a smooth
     deterministic sample: the sketch carries five markers, so a few
     percent of relative error is its documented accuracy, not rtol. *)
  let n = 10_000 in
  let data = Array.init n (fun i -> Float.of_int ((i * 7919) mod n) /. Float.of_int n) in
  List.iter
    (fun p ->
      let exact = Rr_util.Stats.percentile data ~p:(100. *. p) in
      let sketch = Sink.of_array (Sink.quantile ~p ()) data in
      if Float.abs (sketch -. exact) > 0.02 *. Float.max 0.05 exact then
        Alcotest.failf "p=%.2f: sketch %.5f vs exact %.5f" p sketch exact)
    [ 0.5; 0.9; 0.99 ]

let test_quantile_small_n_exact () =
  (* With five or fewer observations the sketch falls back to the exact
     interpolated order statistic. *)
  let data = [| 3.; 1.; 4.; 1.5; 9. |] in
  List.iter
    (fun p ->
      close
        (Printf.sprintf "small-n p=%g" p)
        (Rr_util.Stats.percentile data ~p:(100. *. p))
        (Sink.of_array (Sink.quantile ~p ()) data))
    [ 0.5; 0.9 ]

let test_sink_empty_and_errors () =
  Alcotest.(check int) "count empty" 0 (Sink.value (Sink.count ()));
  close "lk empty" 0. (Sink.value (Sink.lk ~k:2 ()));
  close "linf empty" 0. (Sink.value (Sink.linf ()));
  (match Sink.power_sum ~k:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "k=0 must be rejected at creation");
  (match Sink.push (Sink.power_sum ~k:2 ()) (-1.) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative flow must be rejected");
  match Sink.value (Rr_metrics.Flow_stats.sink ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty Flow_stats.sink must refuse to produce a record"

let test_streaming_summary_fields () =
  (* Two jobs sharing one machine at speed 1: completions at 2 and 3, so
     makespan 3 and both simultaneously alive. *)
  let stream = Stream.of_instance (Instance.of_jobs [ (0., 1.); (0., 2.) ]) in
  let completions = ref [] in
  let summary =
    Run.simulate_stream (Run.config ()) rr stream
      ~sink:(fun ~id ~arrival:_ ~flow -> completions := (id, flow) :: !completions)
  in
  Alcotest.(check int) "n" 2 summary.Simulator.n;
  Alcotest.(check int) "machines" 1 summary.Simulator.machines;
  Alcotest.(check int) "max alive" 2 summary.Simulator.max_alive;
  close "makespan" 3. summary.Simulator.makespan;
  match List.rev !completions with
  | [ (id0, f0); (id1, f1) ] ->
      (* completion order: the short job first *)
      Alcotest.(check int) "short job first" 0 id0;
      Alcotest.(check int) "long job second" 1 id1;
      close "flow 0" 2. f0;
      close "flow 1" 3. f1
  | l -> Alcotest.failf "expected 2 completions, got %d" (List.length l)

let () =
  Alcotest.run "rr_stream"
    [
      ( "streamed = materialized",
        [
          Alcotest.test_case "all shapes x machines x engines" `Quick
            test_stream_matches_materialized;
          Alcotest.test_case "priority-index and setf streaming engines" `Quick
            test_stream_matches_materialized_fast_engines;
        ] );
      ( "stream semantics",
        [
          Alcotest.test_case "digest equals materialized" `Quick
            test_stream_digest_equals_materialized;
          Alcotest.test_case "replayable cursors" `Quick test_stream_replayable;
          Alcotest.test_case "digest memoized" `Quick test_digest_memoized;
          Alcotest.test_case "measure_stream cache keys" `Quick test_measure_stream_cache;
        ] );
      ( "sink folds",
        [
          Alcotest.test_case "quantile sketch accuracy" `Quick test_quantile_sketch_accuracy;
          Alcotest.test_case "quantile small-n exact" `Quick test_quantile_small_n_exact;
          Alcotest.test_case "empty and error cases" `Quick test_sink_empty_and_errors;
          Alcotest.test_case "streaming summary" `Quick test_streaming_summary_fields;
        ] );
    ]
