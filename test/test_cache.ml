(* Tests for the sharded, bounded, single-flight result cache (Rr_core.Cache).
   The three load-bearing properties:

   - single-flight: concurrent misses on one cold key run the computation
     exactly once — misses counts computations, so hits + misses = lookups;
   - bounded: past capacity the cache evicts (second chance) instead of
     silently refusing to store;
   - no aliasing: keys differing only in [engine] / [streamed] are
     distinct entries, because the engines they tag agree only to a
     tolerance, not to the bit. *)

open Temporal_fairness

let key ?(policy = "test-policy") ?(machines = 1) ?(speed = 1.) ?(k = 2) ?(engine = "general")
    ?(streamed = false) digest =
  Cache.key ~policy ~machines ~speed ~k ~engine ~streamed ~digest:(Int64.of_int digest)

let entry v =
  { Cache.n = 1; norm = v; power_sum = v; mean_flow = v; max_flow = v; events = 0 }

(* Every test starts from an empty cache at default capacity and restores
   that state on the way out, so tests compose in any order. *)
let fresh f () =
  Cache.set_capacity Cache.default_capacity;
  Cache.clear ();
  Fun.protect ~finally:(fun () ->
      Cache.set_capacity Cache.default_capacity;
      Cache.clear ())
    f

(* ------------------------------------------------------------------ *)
(* Single-flight                                                       *)
(* ------------------------------------------------------------------ *)

let test_single_flight () =
  let computes = Atomic.make 0 in
  let k0 = key 12345 in
  let compute () =
    Atomic.incr computes;
    (* Long enough that the other domains look the key up while the leader
       is still computing — they must join the flight, not recompute. *)
    Unix.sleepf 0.05;
    entry 7.
  in
  let lookups = 8 in
  Pool.with_pool ~domains:4 (fun pool ->
      let results =
        Pool.map ~chunk:(`Fixed 1) pool
          (fun _ -> Cache.find_or_compute k0 compute)
          (List.init lookups Fun.id)
      in
      List.iter
        (fun (e : Cache.entry) -> Alcotest.(check (float 0.)) "published value" 7. e.norm)
        results);
  Alcotest.(check int) "exactly one compute" 1 (Atomic.get computes);
  let st = Cache.stats () in
  Alcotest.(check int) "misses count computations" 1 st.misses;
  Alcotest.(check int) "every lookup counted once" lookups (st.hits + st.misses);
  Alcotest.(check bool) "some lookups joined the flight" true (st.coalesced >= 1)

let test_single_flight_failure () =
  let computes = Atomic.make 0 in
  let k0 = key 54321 in
  let boom () =
    Atomic.incr computes;
    Unix.sleepf 0.02;
    failwith "cold compute failed"
  in
  Pool.with_pool ~domains:4 (fun pool ->
      match
        Pool.map ~chunk:(`Fixed 1) pool
          (fun _ -> Cache.find_or_compute k0 boom)
          (List.init 4 Fun.id)
      with
      | _ -> Alcotest.fail "expected the leader's failure to propagate"
      | exception Pool.Task_error (_, Failure msg) ->
          Alcotest.(check string) "leader's exception" "cold compute failed" msg);
  (* A failed flight must not wedge the key: the next lookup recomputes. *)
  let e = Cache.find_or_compute k0 (fun () -> entry 3.) in
  Alcotest.(check (float 0.)) "key recovers after failure" 3. e.norm

(* ------------------------------------------------------------------ *)
(* Bounded storage and eviction                                        *)
(* ------------------------------------------------------------------ *)

let test_eviction_past_capacity () =
  Cache.set_capacity 16;
  let cap = (Cache.stats ()).capacity in
  Alcotest.(check bool) "effective capacity >= requested" true (cap >= 16);
  let n = 400 in
  for i = 1 to n do
    ignore (Cache.find_or_compute (key i) (fun () -> entry (Float.of_int i)))
  done;
  let st = Cache.stats () in
  Alcotest.(check int) "all cold keys computed" n st.misses;
  Alcotest.(check bool) "size stays within capacity" true (st.size <= cap);
  Alcotest.(check bool)
    (Printf.sprintf "evictions cover the overflow (%d evicted, %d inserted, cap %d)"
       st.evictions n cap)
    true
    (st.evictions >= n - cap)

let test_capacity_zero_disables_storage () =
  Cache.set_capacity 0;
  let computes = ref 0 in
  let k0 = key 77 in
  for _ = 1 to 3 do
    ignore
      (Cache.find_or_compute k0 (fun () ->
           incr computes;
           entry 1.))
  done;
  Alcotest.(check int) "nothing stored, every lookup computes" 3 !computes;
  let st = Cache.stats () in
  Alcotest.(check int) "zero capacity" 0 st.capacity;
  Alcotest.(check int) "zero size" 0 st.size

let test_hot_key_stays_hit () =
  Cache.set_capacity 64;
  let k0 = key 1 in
  ignore (Cache.find_or_compute k0 (fun () -> entry 9.));
  for _ = 1 to 10 do
    let e = Cache.find_or_compute k0 (fun () -> Alcotest.fail "must be cached") in
    Alcotest.(check (float 0.)) "cached value" 9. e.norm
  done;
  let st = Cache.stats () in
  Alcotest.(check int) "one miss" 1 st.misses;
  Alcotest.(check int) "ten hits" 10 st.hits

(* ------------------------------------------------------------------ *)
(* Stats aggregation and sharding                                      *)
(* ------------------------------------------------------------------ *)

let test_stats_totals_equal_shard_sums () =
  for i = 1 to 100 do
    ignore (Cache.find_or_compute (key i) (fun () -> entry (Float.of_int i)))
  done;
  for i = 1 to 50 do
    ignore (Cache.find_or_compute (key i) (fun () -> entry (Float.of_int i)))
  done;
  let st = Cache.stats () in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 st.shards in
  Alcotest.(check int) "shard count" (Cache.shard_count ()) (Array.length st.shards);
  Alcotest.(check int) "hits" st.hits (sum (fun s -> s.Cache.s_hits));
  Alcotest.(check int) "misses" st.misses (sum (fun s -> s.Cache.s_misses));
  Alcotest.(check int) "coalesced" st.coalesced (sum (fun s -> s.Cache.s_coalesced));
  Alcotest.(check int) "evictions" st.evictions (sum (fun s -> s.Cache.s_evictions));
  Alcotest.(check int) "size" st.size (sum (fun s -> s.Cache.s_size));
  Alcotest.(check int) "capacity" st.capacity (sum (fun s -> s.Cache.s_capacity))

let test_set_shards_rounds_and_migrates () =
  let original = Cache.shard_count () in
  Fun.protect ~finally:(fun () -> Cache.set_shards original) @@ fun () ->
  for i = 1 to 30 do
    ignore (Cache.find_or_compute (key i) (fun () -> entry (Float.of_int i)))
  done;
  Cache.set_shards 5;
  Alcotest.(check int) "rounded up to a power of two" 8 (Cache.shard_count ());
  (* entries survived the migration: no recomputation *)
  for i = 1 to 30 do
    let e = Cache.find_or_compute (key i) (fun () -> Alcotest.fail "lost in migration") in
    Alcotest.(check (float 0.)) "migrated value" (Float.of_int i) e.norm
  done;
  (match Cache.set_shards 0 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected rejection of set_shards 0");
  Cache.reserve_shards ~domains:4;
  Alcotest.(check bool) "reserve grows to >= 4x domains" true (Cache.shard_count () >= 16);
  let before = Cache.shard_count () in
  Cache.reserve_shards ~domains:1;
  Alcotest.(check int) "reserve never shrinks" before (Cache.shard_count ())

(* ------------------------------------------------------------------ *)
(* Key non-aliasing                                                    *)
(* ------------------------------------------------------------------ *)

let test_engine_flags_never_alias () =
  let variants =
    [
      key 999;
      key ~engine:"equal-share" 999;
      key ~engine:"srpt-index" 999;
      key ~streamed:true 999;
      key ~engine:"equal-share" ~streamed:true 999;
    ]
  in
  List.iteri
    (fun i k ->
      let e = Cache.find_or_compute k (fun () -> entry (Float.of_int i)) in
      Alcotest.(check (float 0.)) (Printf.sprintf "variant %d computed" i) (Float.of_int i)
        e.norm)
    variants;
  (* All four coexist: a lookup of each returns its own value, never a
     sibling's. *)
  List.iteri
    (fun i k ->
      let e = Cache.find_or_compute k (fun () -> Alcotest.fail "variant missing") in
      Alcotest.(check (float 0.)) (Printf.sprintf "variant %d distinct" i) (Float.of_int i)
        e.norm)
    variants;
  let st = Cache.stats () in
  Alcotest.(check int) "five distinct entries" 5 st.size

let () =
  Alcotest.run "rr_cache"
    [
      ( "single-flight",
        [
          Alcotest.test_case "exactly one compute" `Quick (fresh test_single_flight);
          Alcotest.test_case "failure propagates, key recovers" `Quick
            (fresh test_single_flight_failure);
        ] );
      ( "bounded",
        [
          Alcotest.test_case "evicts past capacity" `Quick (fresh test_eviction_past_capacity);
          Alcotest.test_case "capacity 0 disables" `Quick
            (fresh test_capacity_zero_disables_storage);
          Alcotest.test_case "hot key stays hit" `Quick (fresh test_hot_key_stays_hit);
        ] );
      ( "sharding",
        [
          Alcotest.test_case "totals = sum of shards" `Quick
            (fresh test_stats_totals_equal_shard_sums);
          Alcotest.test_case "set_shards rounds and migrates" `Quick
            (fresh test_set_shards_rounds_and_migrates);
        ] );
      ( "keys",
        [
          Alcotest.test_case "engine/streamed never alias" `Quick
            (fresh test_engine_flags_never_alias);
        ] );
    ]
